"""Simulation-as-a-service: an asyncio front end over the dispatch stack.

:class:`SimulationServer` accepts :class:`SimulationRequest`\\ s — a circuit
(or its QASM text), a noise model, a shot count and a memory budget — and
returns merged counts plus per-request telemetry.  Each request runs
through one synchronous pipeline (on an executor thread, so the asyncio
event loop stays free to accept work):

1. **parse** — QASM text becomes a :class:`~repro.circuits.circuit.Circuit`;
2. **transpile** — single-qubit runs are fused, memoised by circuit hash;
3. **plan** — the DCP partition search runs once per ``(circuit, shots,
   noise, backend)`` and is cached;
4. **admit** — :func:`~repro.analysis.memory.admit_plan` checks the plan's
   pooled buffers *plus* the prefix states the request will keep resident
   against the request's memory budget, lowering the batch cap or
   rejecting outright;
5. **execute** — a warm noiseless request samples its leaves directly from
   the cached final state (no tree traversal at all); everything else runs
   through a fresh :class:`~repro.core.engine.TQSimEngine` or a
   :class:`~repro.dispatch.dispatchers.PoolDispatcher`, bitwise identical
   either way by the path-keyed seeding contract.

Determinism: request IDs derive from a :mod:`repro.core.pathrng` key
chain (no uuid/entropy), all clock reads go through
:mod:`repro.obs.clock`, and a request's counts depend only on
``(circuit, noise, shots, seed)`` — never on cache state, concurrency or
arrival order.  The warm fast path is *bitwise* identical in counts to
the cold run because, under trivial noise, every leaf's pre-measurement
state equals the cached final state and every leaf stream sits at
counter 0 when the outcome is drawn.

Latency telemetry is counter-backed: each request's wall time lands in
the cumulative ``serve.latency.le_*`` histogram buckets
(:mod:`repro.obs.schema`), from which :meth:`SimulationServer.percentiles`
reads p50/p99 without storing per-request samples.
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.analysis.memory import (
    XEON_NODE_MEMORY_BYTES,
    AdmissionDecision,
    admit_plan,
    statevector_bytes,
)
from repro.backends import get_backend
from repro.circuits.circuit import Circuit
from repro.circuits.qasm import from_qasm
from repro.circuits.transpile import fuse_single_qubit_runs
from repro.core.copycost import DEFAULT_COPY_COST_IN_GATES
from repro.core.costmodel import CostModel
from repro.core.engine import DEFAULT_MAX_TREE_BATCH, TQSimEngine
from repro.core.partitioners import DynamicCircuitPartitioner, PartitionPlan
from repro.core.pathrng import (
    PathStream,
    child_key,
    child_keys,
    draw_block,
    run_root_key,
)
from repro.core.results import CostCounters, SimulationResult
from repro.dispatch.dispatchers import PoolDispatcher
from repro.noise.model import NoiseModel
from repro.noise.sycamore import noise_model_by_code
from repro.obs import clock
from repro.obs.schema import (
    SERVE_CACHE_PREFIX,
    SERVE_PREFIX,
    latency_percentiles_ms,
    record_latency,
)
from repro.obs.tracer import AnyTracer, MetricSet, NullTracer, Tracer
from repro.serve.cache import DEFAULT_STATE_CACHE_BYTES, ServeCaches
from repro.statevector.sampling import index_to_bitstring

__all__ = [
    "SimulationRequest",
    "SimulationResponse",
    "SimulationServer",
    "serve_forever",
]

#: Domain separator of the request-ID key chain: keeps the IDs' pathrng
#: stream disjoint from every simulation stream.
_REQUEST_ID_SALT = 0x53525645  # "SRVE"

#: Leaf keys sampled per vectorised warm-path block.
_WARM_SAMPLE_CHUNK = 65536


@dataclass
class SimulationRequest:
    """One simulation job: circuit (or QASM), noise, shots and budget."""

    circuit: Circuit | None = None
    qasm: str | None = None
    #: ``None``/``"ideal"`` for noiseless, a Figure-16 code (``"DC"``,
    #: ``"ADR"``, ...) resolved via
    #: :func:`~repro.noise.sycamore.noise_model_by_code`, or a
    #: :class:`~repro.noise.model.NoiseModel` instance.
    noise: str | NoiseModel | None = None
    shots: int = 1024
    #: Memory budget the request is admitted against (pool + prefix states).
    memory_bytes: float = XEON_NODE_MEMORY_BYTES
    #: Root seed of the trajectory ensemble; responses are a pure function
    #: of ``(circuit, noise, shots, seed)``.
    seed: int = 0
    #: Backend registry name; ``None`` lets admission pick
    #: ``"batched"``/``"optimized"``.
    backend: str | None = None

    def resolve_circuit(self) -> Circuit:
        if (self.circuit is None) == (self.qasm is None):
            raise ValueError("provide exactly one of circuit or qasm")
        if self.circuit is not None:
            return self.circuit
        return from_qasm(self.qasm or "")

    def resolve_noise(self) -> NoiseModel | None:
        if self.noise is None or isinstance(self.noise, NoiseModel):
            return self.noise
        if self.noise.lower() == "ideal":
            return None
        return noise_model_by_code(self.noise)


@dataclass
class SimulationResponse:
    """The merged outcome of one request, plus serving telemetry."""

    request_id: str
    status: str  # "ok" | "rejected" | "error"
    counts: dict[str, int] = field(default_factory=dict)
    shots: int = 0
    num_qubits: int = 0
    elapsed_seconds: float = 0.0
    #: True when the warm sampling-only fast path served the request.
    cached: bool = False
    error: str = ""
    admission: dict[str, Any] = field(default_factory=dict)
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_json(self) -> dict[str, Any]:
        """Wire form for the JSON-lines front end (no numpy scalars)."""
        return {
            "request_id": self.request_id,
            "status": self.status,
            "counts": {k: int(v) for k, v in self.counts.items()},
            "shots": int(self.shots),
            "num_qubits": int(self.num_qubits),
            "elapsed_seconds": float(self.elapsed_seconds),
            "cached": bool(self.cached),
            "error": self.error,
            "admission": self.admission,
        }


def _admission_dict(decision: AdmissionDecision) -> dict[str, Any]:
    return {
        "fits_memory": decision.fits_memory,
        "max_batch": decision.max_batch,
        "peak_bytes": decision.peak_bytes,
        "use_batched": decision.use_batched,
        "reason": decision.reason,
    }


class SimulationServer:
    """Admission-controlled, cache-accelerated simulation service.

    Parameters
    ----------
    workers:
        Worker processes per cold request: 1 (default) runs in-process on
        a fresh engine; >1 fans out through a
        :class:`~repro.dispatch.dispatchers.PoolDispatcher`.  Counts are
        bitwise identical either way.
    executor_threads:
        Concurrent requests in flight; further submissions queue in the
        executor (the job queue).  Simulation releases the GIL poorly, so
        this mainly overlaps planning/transpile with execution — scale-out
        belongs to worker processes, not threads.
    state_cache_bytes / plan_cache_entries / transpile_cache_entries:
        Budgets of the three cross-request caches.
    cost_model:
        Calibrated :class:`~repro.core.costmodel.CostModel` for admission's
        traversal pick and the pool's shard sizing.
    tracer:
        When given (and enabled), each request records spans into its own
        :class:`~repro.obs.tracer.Tracer` (tracers are not thread-safe)
        which is absorbed under the server lock onto a per-request track.
    """

    def __init__(
        self,
        workers: int = 1,
        executor_threads: int = 4,
        memory_bytes: float = XEON_NODE_MEMORY_BYTES,
        max_batch: int = DEFAULT_MAX_TREE_BATCH,
        copy_cost_in_gates: float = DEFAULT_COPY_COST_IN_GATES,
        cost_model: CostModel | None = None,
        state_cache_bytes: int = DEFAULT_STATE_CACHE_BYTES,
        plan_cache_entries: int = 256,
        transpile_cache_entries: int = 256,
        server_seed: int = 0,
        tracer: AnyTracer | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if executor_threads < 1:
            raise ValueError("executor_threads must be >= 1")
        self.workers = workers
        self.default_memory_bytes = memory_bytes
        self.max_batch = max_batch
        self.copy_cost_in_gates = copy_cost_in_gates
        self.cost_model = cost_model
        self.tracer: AnyTracer = tracer if tracer is not None else NullTracer()
        self.caches = ServeCaches()
        self.caches.prefix.max_bytes = state_cache_bytes
        self.caches.plan.max_entries = plan_cache_entries
        self.caches.transpile.max_entries = transpile_cache_entries
        #: Server-level counters (requests, cache stats, latency histogram);
        #: guarded by ``_lock`` — MetricSet is not thread-safe.
        self.metrics = MetricSet()
        self._lock = threading.Lock()
        self._executor = ThreadPoolExecutor(
            max_workers=executor_threads, thread_name_prefix="repro-serve"
        )
        self._id_key = child_key(
            run_root_key(server_seed), _REQUEST_ID_SALT
        )
        self._sequence = 0
        self._partitioner = DynamicCircuitPartitioner(
            copy_cost_in_gates=copy_cost_in_gates, cost_model=cost_model
        )

    # -- job queue ------------------------------------------------------
    async def submit(self, request: SimulationRequest) -> SimulationResponse:
        """Queue one request; resolves when its pipeline completes.

        The synchronous pipeline runs on the server's thread pool, so the
        event loop keeps accepting submissions while simulations run;
        queued jobs start in submission order as threads free up.
        """
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, self.handle, request)

    def close(self) -> None:
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "SimulationServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- telemetry ------------------------------------------------------
    def percentiles(
        self, percentiles: Sequence[float] = (50.0, 99.0)
    ) -> dict[float, float]:
        """Counter-backed request-latency percentiles, in milliseconds."""
        with self._lock:
            return latency_percentiles_ms(self.metrics, percentiles)

    def counters(self) -> dict[str, float]:
        """Snapshot of the server's ``serve.*`` counters."""
        with self._lock:
            return dict(self.metrics.counters)

    def _next_request_id(self) -> str:
        with self._lock:
            sequence = self._sequence
            self._sequence += 1
        return f"req-{child_key(self._id_key, sequence):016x}"

    def _finish(
        self,
        response: SimulationResponse,
        started: float,
        tracer: AnyTracer,
        outcome: str,
    ) -> SimulationResponse:
        response.elapsed_seconds = clock.perf_seconds() - started
        with self._lock:
            self.metrics.count(SERVE_PREFIX + "requests")
            self.metrics.count(SERVE_PREFIX + f"requests.{outcome}")
            record_latency(self.metrics, response.elapsed_seconds)
            for cache, delta in self.caches.stat_deltas().items():
                for stat, value in delta.items():
                    self.metrics.count(
                        f"{SERVE_CACHE_PREFIX}{cache}.{stat}", value
                    )
            if tracer.enabled and isinstance(tracer, Tracer):
                self.tracer.absorb(
                    tracer.buffer(),
                    track=response.request_id,
                    request=response.request_id,
                )
        return response

    # -- the pipeline ---------------------------------------------------
    def handle(self, request: SimulationRequest) -> SimulationResponse:
        """Run one request synchronously (thread-safe)."""
        request_id = self._next_request_id()
        started = clock.perf_seconds()
        tracer: AnyTracer = (
            Tracer(track=request_id) if self.tracer.enabled else NullTracer()
        )
        response = SimulationResponse(request_id=request_id, status="error")
        try:
            with tracer.span("serve.request", id=request_id):
                self._handle_inner(request, response, tracer)
        except Exception as error:  # noqa: BLE001 - the service boundary
            response.status = "error"
            response.error = f"{type(error).__name__}: {error}"
        outcome = response.status if response.status != "ok" else (
            "warm" if response.cached else "cold"
        )
        return self._finish(response, started, tracer, outcome)

    def _handle_inner(
        self,
        request: SimulationRequest,
        response: SimulationResponse,
        tracer: AnyTracer,
    ) -> None:
        if request.shots < 1:
            raise ValueError("shots must be >= 1")
        circuit = request.resolve_circuit()
        noise_model = request.resolve_noise()
        noiseless = noise_model is None or noise_model.is_trivial
        response.num_qubits = circuit.num_qubits

        # Transpile (cached): fusion is pure, and both the cold and the
        # warm path simulate the *fused* circuit, so caching cannot change
        # what a request observes.
        raw_hash = circuit.content_hash()
        fused = self.caches.transpile.get(raw_hash)
        if fused is None:
            with tracer.span("serve.transpile", gates=circuit.num_gates):
                fused = fuse_single_qubit_runs(circuit)
            self.caches.transpile.put(raw_hash, fused)
        fused_hash = (
            fused.content_hash() if fused is not circuit else raw_hash
        )

        # Plan (cached): the DCP search depends on the fused circuit, the
        # shot count and the noise model (error-rate-aware depth choice).
        noise_key = noise_model.name if noise_model is not None else "ideal"
        plan_key = (fused_hash, request.shots, noise_key, request.backend)
        plan = self.caches.plan.get(plan_key)
        if plan is None:
            with tracer.span("serve.plan", shots=request.shots):
                plan = self._partitioner.plan(
                    fused, request.shots, noise_model
                )
            self.caches.plan.put(plan_key, plan)

        # Admission: the pooled traversal buffers plus every prefix state
        # this request will keep resident must fit the request's budget.
        lengths = tuple(int(n) for n in plan.subcircuit_lengths)
        prefix_states = plan.tree.num_subcircuits if noiseless else 0
        decision = admit_plan(
            fused.num_qubits,
            plan.tree.arities,
            lengths,
            memory_bytes=min(request.memory_bytes, self.default_memory_bytes),
            cost_model=self.cost_model,
            max_batch=self.max_batch,
            prefix_states=prefix_states,
        )
        response.admission = _admission_dict(decision)
        if not decision.fits_memory:
            response.status = "rejected"
            response.error = decision.reason
            return
        backend_name = request.backend or (
            "batched" if decision.use_batched else "optimized"
        )

        result: SimulationResult | None = None
        if noiseless:
            result = self._try_warm(
                request, plan, fused_hash, lengths, backend_name, tracer
            )
            response.cached = result is not None
        if result is None:
            with tracer.span(
                "serve.execute", backend=backend_name, workers=self.workers
            ):
                result = self._run_cold(
                    request, fused, plan, noise_model, backend_name,
                    decision, tracer,
                )
            if noiseless:
                self._populate_states(fused_hash, lengths, plan)
        response.status = "ok"
        response.counts = dict(result.counts)
        response.shots = result.shots
        response.metadata = dict(result.metadata)
        response.metadata["serve"] = {
            "request_id": response.request_id,
            "cached": response.cached,
            "backend": backend_name,
            "fused_hash": fused_hash,
        }

    # -- cold execution -------------------------------------------------
    def _run_cold(
        self,
        request: SimulationRequest,
        fused: Circuit,
        plan: PartitionPlan,
        noise_model: NoiseModel | None,
        backend_name: str,
        decision: AdmissionDecision,
        tracer: AnyTracer,
    ) -> SimulationResult:
        if self.workers > 1:
            dispatcher = PoolDispatcher(
                noise_model=noise_model,
                seed=request.seed,
                num_workers=self.workers,
                backend=backend_name,
                copy_cost_in_gates=self.copy_cost_in_gates,
                max_batch=decision.max_batch,
                cost_model=self.cost_model,
                tracer=tracer,
            )
            return dispatcher.run(fused, request.shots, plan=plan)
        engine = TQSimEngine(
            noise_model=noise_model,
            seed=request.seed,
            backend=backend_name,
            copy_cost_in_gates=self.copy_cost_in_gates,
            max_batch=decision.max_batch,
            tracer=tracer,
        )
        return engine.run(fused, request.shots, plan=plan)

    # -- the warm fast path ---------------------------------------------
    def _leaf_keys(self, seed: int, arities: Sequence[int]) -> list[int]:
        """Every leaf's path key, exactly as run 0 of a fresh engine derives
        them: first-layer keys from the run key, each deeper layer by the
        vectorised ``child_keys`` chain."""
        run_key = run_root_key(seed)
        level = [int(k) for k in child_keys(run_key, 0, arities[0])]
        for arity in arities[1:]:
            level = [
                int(c) for key in level for c in child_keys(key, 0, arity)
            ]
        return level

    def _try_warm(
        self,
        request: SimulationRequest,
        plan: PartitionPlan,
        fused_hash: str,
        lengths: tuple[int, ...],
        backend_name: str,
        tracer: AnyTracer,
    ) -> SimulationResult | None:
        """Serve a noiseless request from the cached final state, or None.

        Correctness: under trivial noise the pre-measurement state of every
        leaf equals the depth-``L`` prefix state (evolution is deterministic
        and path-independent), and each leaf's stream sits at counter 0
        when its outcome is drawn (no noise draws precede sampling).  So
        sampling each leaf key's first uniform against the cached state's
        inverse CDF reproduces the cold tree's counts *bitwise* — only the
        cost counters differ (no copies or gate applications happen).
        """
        depth_view = self.caches.state_view(fused_hash, lengths)
        state = depth_view.get(len(lengths))
        if state is None:
            return None
        backend = get_backend(backend_name)
        arities = plan.tree.arities
        start = clock.perf_seconds()
        counts: dict[str, int] = {}
        with tracer.span(
            "serve.warm_sample", leaves=plan.total_outcomes
        ):
            cumulative = np.cumsum(backend.probabilities(state))
            total = cumulative[-1]
            if total <= 0:
                return None
            keys = self._leaf_keys(request.seed, arities)
            num_qubits = int(cumulative.size).bit_length() - 1
            for begin in range(0, len(keys), _WARM_SAMPLE_CHUNK):
                chunk = keys[begin : begin + _WARM_SAMPLE_CHUNK]
                streams = [PathStream(key) for key in chunk]
                # One vectorised block draw, bitwise equal to each stream's
                # scalar ``.random()`` — the same primitive the batched
                # traversal's leaf sampling consumes.
                uniforms = draw_block(streams, 1)[:, 0]
                positions = np.minimum(
                    np.searchsorted(
                        cumulative, uniforms * total, side="right"
                    ),
                    cumulative.size - 1,
                )
                for index, tally in zip(
                    *np.unique(positions, return_counts=True)
                ):
                    bitstring = index_to_bitstring(int(index), num_qubits)
                    counts[bitstring] = counts.get(bitstring, 0) + int(tally)
        produced = len(keys)
        cost = CostCounters(
            leaf_samples=produced,
            wall_time_seconds=clock.perf_seconds() - start,
        )
        metadata = {
            "simulator": "tqsim",
            "backend": backend_name,
            "execution": "serve-cached",
            "policy": plan.policy,
            "tree": str(plan.tree),
            "subcircuit_lengths": plan.subcircuit_lengths,
            "requested_shots": request.shots,
            "seeding": "path-keyed-counter-v2",
            "noise_model": "ideal",
        }
        return SimulationResult(
            counts=counts,
            num_qubits=num_qubits,
            shots=produced,
            cost=cost,
            metadata=metadata,
        )

    def _populate_states(
        self,
        fused_hash: str,
        lengths: tuple[int, ...],
        plan: PartitionPlan,
    ) -> None:
        """Evolve |0..0> once through the subcircuit chain and cache every
        depth's state.

        One noiseless trajectory (a few hundred gate applications) funds
        warm service of *every* future request for this circuit.  States
        are evolved on the ``"optimized"`` kernels; the cross-backend
        bitwise contract (see ``tests/test_differential_harness.py``)
        makes the resulting counts identical no matter which backend a
        cold run would have used.
        """
        depth_view = self.caches.state_view(fused_hash, lengths)
        if depth_view.get(len(lengths)) is not None:
            return
        backend = get_backend("optimized")
        num_qubits = plan.subcircuits[0].num_qubits
        if statevector_bytes(num_qubits) > (self.caches.prefix.max_bytes
                                            or float("inf")):
            return
        state = backend.reset_state(backend.allocate_state(num_qubits))
        for depth, subcircuit in enumerate(plan.subcircuits, start=1):
            for gate in subcircuit:
                state = backend.apply_gate(state, gate)
            depth_view.put(depth, backend.copy_state(state))


# ---------------------------------------------------------------------------
# JSON-lines TCP front end
# ---------------------------------------------------------------------------
async def _handle_connection(
    server: SimulationServer,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """One client connection: JSON request per line, JSON response per line."""
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            try:
                payload = json.loads(line)
                request = SimulationRequest(
                    qasm=payload.get("qasm"),
                    noise=payload.get("noise"),
                    shots=int(payload.get("shots", 1024)),
                    memory_bytes=float(
                        payload.get("memory_bytes",
                                    server.default_memory_bytes)
                    ),
                    seed=int(payload.get("seed", 0)),
                    backend=payload.get("backend"),
                )
            except (ValueError, TypeError, json.JSONDecodeError) as error:
                writer.write(
                    (json.dumps({"status": "error",
                                 "error": str(error)}) + "\n").encode()
                )
                await writer.drain()
                continue
            response = await server.submit(request)
            writer.write((json.dumps(response.to_json()) + "\n").encode())
            await writer.drain()
    finally:
        writer.close()


async def serve_forever(
    server: SimulationServer, host: str = "127.0.0.1", port: int = 8753
) -> None:
    """Run the JSON-lines TCP front end until cancelled."""
    tcp = await asyncio.start_server(
        lambda r, w: _handle_connection(server, r, w), host, port
    )
    async with tcp:
        await tcp.serve_forever()
