"""Simulation-as-a-service: async job queue, admission, cross-request caches.

See :mod:`repro.serve.server` for the request pipeline and
:mod:`repro.serve.replay` for the heavy-traffic benchmark harness.
"""

from repro.serve.cache import LRUCache, ServeCaches
from repro.serve.replay import ReplayReport, build_request_mix, run_replay
from repro.serve.server import (
    SimulationRequest,
    SimulationResponse,
    SimulationServer,
    serve_forever,
)

__all__ = [
    "LRUCache",
    "ReplayReport",
    "ServeCaches",
    "SimulationRequest",
    "SimulationResponse",
    "SimulationServer",
    "build_request_mix",
    "run_replay",
    "serve_forever",
]
