"""The serving layer's cross-request caches.

Three memoisations turn a repeated-circuit request mix from "simulate
everything again" into "look the hard parts up", all keyed by the stable
:meth:`~repro.circuits.circuit.Circuit.content_hash` fingerprint so that
cosmetically different but semantically equal submissions share entries:

* **transpile** — :func:`~repro.circuits.transpile.fuse_single_qubit_runs`
  output keyed by the *raw* circuit hash.  Fusion is pure, so the fused
  circuit is shared by every request that submits the same gates.
* **plan** — DCP partition plans keyed by ``(fused-hash, shots,
  noise, backend)``.  The plan search is pure and (in calibrated mode)
  the most expensive non-simulation work a request triggers.
* **prefix states** — noiseless intermediate statevectors in one shared
  byte-bounded :class:`~repro.core.statecache.PrefixStateCache`, keyed by
  ``(fused-hash, subcircuit-lengths, depth)``.  Under a trivial noise
  model the state after ``d`` subcircuits is *path-independent* (every
  tree node of one layer holds the same amplitudes), so one entry per
  depth serves every path — and the depth-``L`` entry lets a warm request
  skip the tree entirely and go straight to leaf sampling
  (:meth:`~repro.serve.server.SimulationServer`).

Entry-count caches (:class:`LRUCache`) guard the small pure-Python
objects; the statevector cache is byte-bounded because its entries are
the actual memory hazard.  Every cache keeps hit/miss/eviction stats
(:class:`~repro.core.statecache.CacheStats`); the server flushes deltas
onto ``serve.cache.*`` obs counters per request.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.core.statecache import (
    CacheStats,
    NamespacedStateCache,
    PrefixStateCache,
)

__all__ = ["LRUCache", "ServeCaches", "DEFAULT_STATE_CACHE_BYTES"]

#: Default budget of the shared cross-request statevector cache.
DEFAULT_STATE_CACHE_BYTES = 512 * 1024 * 1024


class LRUCache:
    """A thread-safe, entry-count-bounded LRU cache with stats.

    The value-agnostic companion of
    :class:`~repro.core.statecache.PrefixStateCache`: plans and fused
    circuits are small pure-Python objects, so bounding the *count* is
    enough.  ``get`` returns ``None`` on a miss (values are never None).
    """

    def __init__(self, max_entries: int = 128) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> Any | None:
        with self._lock:
            if key not in self._entries:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return self._entries[key]

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            self._entries.pop(key, None)
            self._entries[key] = value
            self.stats.puts += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


@dataclass
class ServeCaches:
    """The server's three cross-request caches plus stat-flush bookkeeping."""

    plan: LRUCache = field(default_factory=lambda: LRUCache(max_entries=256))
    transpile: LRUCache = field(
        default_factory=lambda: LRUCache(max_entries=256)
    )
    prefix: PrefixStateCache = field(
        default_factory=lambda: PrefixStateCache(DEFAULT_STATE_CACHE_BYTES)
    )
    #: Stats already flushed onto obs counters, per cache name.
    _flushed: dict[str, dict[str, int]] = field(default_factory=dict)

    def state_view(
        self, fused_hash: str, lengths: tuple[int, ...]
    ) -> NamespacedStateCache:
        """Depth-keyed view of the prefix cache for one (circuit, plan).

        ``view.get(d)`` / ``view.put(d, state)`` address the noiseless
        state after the first ``d`` subcircuits.  The engine-facing
        path-keyed view (:meth:`path_view`) maps onto the same entries.
        """
        return self.prefix.namespaced(fused_hash, lengths)

    def path_view(
        self, fused_hash: str, lengths: tuple[int, ...]
    ) -> NamespacedStateCache:
        """Path-keyed view over the same entries as :meth:`state_view`.

        Suitable for ``TQSimEngine.run(prefix_cache=...)``: a node path of
        length ``d`` collapses (``key_fn=len``) onto the shared depth-``d``
        entry — sound only for trivial noise, where the prefix state is
        path-independent.
        """
        return self.prefix.namespaced(fused_hash, lengths, key_fn=len)

    def stat_deltas(self) -> dict[str, dict[str, int]]:
        """Per-cache stat increments since the previous call.

        The server turns these into ``serve.cache.<name>.<stat>`` counter
        bumps; callers must serialise calls (the server holds its lock).
        """
        deltas: dict[str, dict[str, int]] = {}
        for name, cache in (
            ("plan", self.plan),
            ("transpile", self.transpile),
            ("prefix", self.prefix),
        ):
            current = cache.stats.as_dict()
            previous = self._flushed.get(name, {})
            delta = {
                stat: value - previous.get(stat, 0)
                for stat, value in current.items()
                if value != previous.get(stat, 0)
            }
            if delta:
                deltas[name] = delta
            self._flushed[name] = current
        return deltas
