"""Synthetic heavy-traffic replay: the serving layer's benchmark harness.

Production traffic is many concurrent requests over a shared *zoo* of
circuits — most submissions repeat a circuit someone already ran.  This
module synthesises such a mix deterministically (library circuits cycled
over a small zoo, seeds and shot counts fixed by request index), drives it
through one :class:`~repro.serve.server.SimulationServer` twice, and
reports:

* **cold** pass wall time (every cache empty) vs **warm** pass wall time
  (same requests again — plan, transpile and prefix-state hits);
* per-request bitwise count identity between the passes (the correctness
  gate: caching must never change a response);
* requests/sec per pass, and p50/p99 latency read from the server's
  counter-backed ``serve.latency.*`` histogram;
* the ``serve.cache.*`` hit/miss/eviction counters.

Used by ``python -m repro serve --replay`` and the
``benchmarks/test_serve_replay.py`` tier-1 benchmark; all timing goes
through :mod:`repro.obs.clock`.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any

from repro.circuits.circuit import Circuit
from repro.circuits.library import bv_circuit, ghz_circuit, qft_circuit
from repro.obs import clock
from repro.serve.server import (
    SimulationRequest,
    SimulationResponse,
    SimulationServer,
)

__all__ = ["ReplayReport", "build_request_mix", "run_replay"]


def _zoo(num_qubits: int) -> list[Circuit]:
    """The replay's circuit zoo: three structurally different families."""
    return [
        qft_circuit(num_qubits),
        ghz_circuit(num_qubits),
        bv_circuit(num_qubits),
    ]


def build_request_mix(
    num_requests: int,
    num_qubits: int = 6,
    shots: int = 256,
    noise: str | None = None,
    distinct_seeds: int = 4,
) -> list[SimulationRequest]:
    """A deterministic repeated-circuit request mix.

    Request ``i`` cycles through the zoo and through ``distinct_seeds``
    seeds, so the mix exercises both cache hits (same circuit again) and
    distinct ensembles (different seeds over one circuit) — no entropy
    anywhere, so every replay run issues the identical workload.
    """
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    zoo = _zoo(num_qubits)
    return [
        SimulationRequest(
            circuit=zoo[index % len(zoo)],
            noise=noise,
            shots=shots,
            seed=index % distinct_seeds,
        )
        for index in range(num_requests)
    ]


@dataclass
class ReplayReport:
    """Everything the replay measured, JSON-ready."""

    num_requests: int
    cold_seconds: float
    warm_seconds: float
    cold_rps: float
    warm_rps: float
    #: Warm counts bitwise equal to cold counts, per request.
    identical: bool
    mismatches: list[str] = field(default_factory=list)
    p50_ms: float = 0.0
    p99_ms: float = 0.0
    warm_hits: int = 0
    statuses: dict[str, int] = field(default_factory=dict)
    cache_counters: dict[str, float] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        """Cold-pass wall time over warm-pass wall time."""
        if self.warm_seconds <= 0:
            return float("inf")
        return self.cold_seconds / self.warm_seconds

    def to_json(self) -> dict[str, Any]:
        return {
            "num_requests": self.num_requests,
            "cold_seconds": self.cold_seconds,
            "warm_seconds": self.warm_seconds,
            "cold_rps": self.cold_rps,
            "warm_rps": self.warm_rps,
            "speedup": self.speedup,
            "identical": self.identical,
            "mismatches": self.mismatches,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "warm_hits": self.warm_hits,
            "statuses": self.statuses,
            "cache_counters": self.cache_counters,
        }


async def _run_pass(
    server: SimulationServer, requests: list[SimulationRequest]
) -> list[SimulationResponse]:
    return list(
        await asyncio.gather(
            *(server.submit(request) for request in requests)
        )
    )


def run_replay(
    server: SimulationServer | None = None,
    num_requests: int = 24,
    num_qubits: int = 6,
    shots: int = 256,
    noise: str | None = None,
) -> ReplayReport:
    """Drive the request mix through the server twice and compare passes.

    Pass 1 starts with cold caches; pass 2 replays the identical mix
    against the now-warm caches.  The report's ``identical`` flag is the
    correctness verdict (every warm response's counts bitwise equal to its
    cold twin's), and ``speedup`` the headline cache-hit win.
    """
    owned = server is None
    if server is None:
        server = SimulationServer()
    try:
        requests = build_request_mix(
            num_requests, num_qubits=num_qubits, shots=shots, noise=noise
        )
        start = clock.perf_seconds()
        cold = asyncio.run(_run_pass(server, requests))
        cold_seconds = clock.perf_seconds() - start
        start = clock.perf_seconds()
        warm = asyncio.run(_run_pass(server, requests))
        warm_seconds = clock.perf_seconds() - start

        mismatches: list[str] = []
        for index, (before, after) in enumerate(zip(cold, warm)):
            if before.status != after.status:
                mismatches.append(
                    f"request {index}: status {before.status} -> "
                    f"{after.status}"
                )
            elif before.counts != after.counts:
                mismatches.append(
                    f"request {index}: counts diverged "
                    f"({before.request_id} vs {after.request_id})"
                )
        statuses: dict[str, int] = {}
        for response in cold + warm:
            statuses[response.status] = statuses.get(response.status, 0) + 1
        percentiles = server.percentiles((50.0, 99.0))
        counters = server.counters()
        return ReplayReport(
            num_requests=num_requests,
            cold_seconds=cold_seconds,
            warm_seconds=warm_seconds,
            cold_rps=num_requests / cold_seconds if cold_seconds else 0.0,
            warm_rps=num_requests / warm_seconds if warm_seconds else 0.0,
            identical=not mismatches,
            mismatches=mismatches,
            p50_ms=percentiles[50.0],
            p99_ms=percentiles[99.0],
            warm_hits=sum(1 for response in warm if response.cached),
            statuses=statuses,
            cache_counters={
                name: value
                for name, value in sorted(counters.items())
                if name.startswith("serve.cache.")
            },
        )
    finally:
        if owned:
            server.close()
