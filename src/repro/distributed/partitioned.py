"""Distributed-simulation time model for circuits and partition plans."""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.circuit import Circuit
from repro.core.partitioners import PartitionPlan
from repro.distributed.cluster import ClusterConfig

__all__ = ["DistributedCostModel", "DistributedEstimate"]


@dataclass(frozen=True)
class DistributedEstimate:
    """Modeled wall-clock of one multi-node simulation."""

    num_nodes: int
    num_qubits: int
    compute_seconds: float
    communication_seconds: float
    copy_seconds: float

    @property
    def total_seconds(self) -> float:
        """Total modeled simulation time."""
        return self.compute_seconds + self.communication_seconds + self.copy_seconds


class DistributedCostModel:
    """Charge a circuit's gates against a :class:`ClusterConfig`.

    Qubits ``n - g .. n - 1`` (the most significant ``g = log2(P)`` qubits)
    are *global*: gates touching them require inter-node exchange, exactly as
    in distributed statevector simulators such as qHiPSTER.
    """

    def __init__(self, cluster: ClusterConfig) -> None:
        self.cluster = cluster

    # ------------------------------------------------------------------
    def gate_seconds(self, circuit: Circuit, num_nodes: int) -> tuple[float, float]:
        """(compute, communication) seconds for one pass over ``circuit``."""
        self.cluster.validate_node_count(num_nodes)
        num_qubits = circuit.num_qubits
        num_global = self.cluster.global_qubits(num_nodes)
        global_threshold = num_qubits - num_global
        local_time = self.cluster.local_gate_seconds(num_qubits, num_nodes)
        global_time = self.cluster.global_gate_seconds(num_qubits, num_nodes)
        compute = 0.0
        communication = 0.0
        for gate in circuit:
            if any(q >= global_threshold for q in gate.qubits) and num_nodes > 1:
                compute += local_time
                communication += global_time - local_time
            else:
                compute += local_time
        return compute, communication

    # ------------------------------------------------------------------
    def baseline_estimate(self, circuit: Circuit, shots: int, num_nodes: int,
                          noise_events_per_gate: float = 1.0) -> DistributedEstimate:
        """Modeled time of the baseline: ``shots`` full passes over the circuit."""
        compute, communication = self.gate_seconds(circuit, num_nodes)
        noise_factor = 1.0 + noise_events_per_gate
        return DistributedEstimate(
            num_nodes=num_nodes,
            num_qubits=circuit.num_qubits,
            compute_seconds=shots * compute * noise_factor,
            communication_seconds=shots * communication,
            copy_seconds=0.0,
        )

    def tqsim_estimate(self, plan: PartitionPlan, num_nodes: int,
                       noise_events_per_gate: float = 1.0) -> DistributedEstimate:
        """Modeled time of TQSim executing ``plan`` on the cluster."""
        num_qubits = plan.subcircuits[0].num_qubits
        noise_factor = 1.0 + noise_events_per_gate
        compute = 0.0
        communication = 0.0
        for instances, subcircuit in zip(plan.tree.subcircuit_instances,
                                         plan.subcircuits):
            sub_compute, sub_comm = self.gate_seconds(subcircuit, num_nodes)
            compute += instances * sub_compute * noise_factor
            communication += instances * sub_comm
        copy_seconds = plan.tree.state_copies * self.cluster.state_copy_seconds(
            num_qubits, num_nodes
        )
        return DistributedEstimate(
            num_nodes=num_nodes,
            num_qubits=num_qubits,
            compute_seconds=compute,
            communication_seconds=communication,
            copy_seconds=copy_seconds,
        )
