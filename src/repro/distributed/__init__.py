"""Simulated multi-node cluster and scaling studies."""

from repro.distributed.cluster import XEON_CLUSTER, ClusterConfig
from repro.distributed.partitioned import DistributedCostModel, DistributedEstimate
from repro.distributed.scaling import ScalingPoint, strong_scaling, weak_scaling

__all__ = [
    "ClusterConfig",
    "XEON_CLUSTER",
    "DistributedCostModel",
    "DistributedEstimate",
    "ScalingPoint",
    "strong_scaling",
    "weak_scaling",
]
