"""Strong and weak scaling studies on the modeled cluster (Figure 13)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.circuits.circuit import Circuit
from repro.core.copycost import DEFAULT_COPY_COST_IN_GATES
from repro.core.partitioners import DynamicCircuitPartitioner
from repro.distributed.cluster import ClusterConfig, XEON_CLUSTER
from repro.distributed.partitioned import DistributedCostModel
from repro.noise.model import NoiseModel

__all__ = ["ScalingPoint", "strong_scaling", "weak_scaling"]


@dataclass(frozen=True)
class ScalingPoint:
    """One (circuit, node count) sample of a scaling study."""

    circuit_name: str
    num_qubits: int
    num_nodes: int
    baseline_seconds: float
    tqsim_seconds: float

    @property
    def tqsim_speedup(self) -> float:
        """TQSim speedup over the baseline at this node count."""
        return self.baseline_seconds / self.tqsim_seconds

    def parallel_speedup(self, single_node_seconds: float) -> float:
        """Strong-scaling speedup relative to the single-node time."""
        return single_node_seconds / self.tqsim_seconds


def _plan_for(circuit: Circuit, shots: int, noise_model: NoiseModel | None):
    partitioner = DynamicCircuitPartitioner(
        copy_cost_in_gates=DEFAULT_COPY_COST_IN_GATES
    )
    return partitioner.plan(circuit, shots, noise_model)


def strong_scaling(
    circuit: Circuit,
    shots: int,
    node_counts: Sequence[int] = (1, 2, 4, 8, 16, 32),
    noise_model: NoiseModel | None = None,
    cluster: ClusterConfig = XEON_CLUSTER,
) -> list[ScalingPoint]:
    """Fixed problem size, increasing node count (Figure 13a)."""
    model = DistributedCostModel(cluster)
    plan = _plan_for(circuit, shots, noise_model)
    noise_rate = 1.0 if noise_model is not None else 0.0
    points = []
    for num_nodes in node_counts:
        baseline = model.baseline_estimate(circuit, shots, num_nodes, noise_rate)
        tqsim = model.tqsim_estimate(plan, num_nodes, noise_rate)
        points.append(
            ScalingPoint(
                circuit_name=circuit.name or "circuit",
                num_qubits=circuit.num_qubits,
                num_nodes=num_nodes,
                baseline_seconds=baseline.total_seconds,
                tqsim_seconds=tqsim.total_seconds,
            )
        )
    return points


def weak_scaling(
    circuits: Sequence[Circuit],
    shots: int,
    node_counts: Sequence[int] | None = None,
    noise_model: NoiseModel | None = None,
    cluster: ClusterConfig = XEON_CLUSTER,
) -> list[ScalingPoint]:
    """Problem size grows with the node count (Figure 13b).

    By default circuit ``i`` runs on ``2**i`` nodes, matching the paper's
    24-to-29-qubit sweep over 1 to 32 nodes.
    """
    if node_counts is None:
        node_counts = [2**i for i in range(len(circuits))]
    if len(node_counts) != len(circuits):
        raise ValueError("need one node count per circuit")
    model = DistributedCostModel(cluster)
    noise_rate = 1.0 if noise_model is not None else 0.0
    points = []
    for circuit, num_nodes in zip(circuits, node_counts):
        plan = _plan_for(circuit, shots, noise_model)
        baseline = model.baseline_estimate(circuit, shots, num_nodes, noise_rate)
        tqsim = model.tqsim_estimate(plan, num_nodes, noise_rate)
        points.append(
            ScalingPoint(
                circuit_name=circuit.name or "circuit",
                num_qubits=circuit.num_qubits,
                num_nodes=num_nodes,
                baseline_seconds=baseline.total_seconds,
                tqsim_seconds=tqsim.total_seconds,
            )
        )
    return points
