"""Simulated multi-node cluster configuration.

The paper's multi-node study (Section 5.3) runs TQSim on a qHiPSTER-based
CPU cluster.  No cluster is available here, so the distributed substrate is a
*performance model*: the statevector is partitioned across nodes, every gate
is charged per-node compute time, and gates touching "global" qubits (those
encoded in the node index) additionally pay a pairwise-exchange communication
cost.  The same model is applied to the baseline and to TQSim, so the
comparison between them — the quantity Figure 13 reports — is preserved.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["ClusterConfig", "XEON_CLUSTER"]


@dataclass(frozen=True)
class ClusterConfig:
    """Per-node compute and interconnect parameters of the modeled cluster."""

    name: str
    node_memory_bytes: float
    #: Amplitudes a node updates per second when applying one gate.
    amplitudes_per_second: float
    #: Sustained point-to-point interconnect bandwidth per node pair.
    interconnect_bytes_per_second: float
    #: Per-message latency of the interconnect.
    message_latency_seconds: float

    def __post_init__(self) -> None:
        if self.node_memory_bytes <= 0 or self.amplitudes_per_second <= 0:
            raise ValueError("node memory and compute throughput must be positive")
        if self.interconnect_bytes_per_second <= 0 or self.message_latency_seconds < 0:
            raise ValueError("invalid interconnect parameters")

    # ------------------------------------------------------------------
    def validate_node_count(self, num_nodes: int) -> None:
        """Node counts must be powers of two (the statevector is bisected)."""
        if num_nodes < 1 or (num_nodes & (num_nodes - 1)) != 0:
            raise ValueError("num_nodes must be a power of two")

    def global_qubits(self, num_nodes: int) -> int:
        """Number of qubits encoded in the node index."""
        self.validate_node_count(num_nodes)
        return int(math.log2(num_nodes))

    def local_amplitudes(self, num_qubits: int, num_nodes: int) -> float:
        """Amplitudes stored per node."""
        self.validate_node_count(num_nodes)
        return (2.0**num_qubits) / num_nodes

    def fits_in_memory(self, num_qubits: int, num_nodes: int) -> bool:
        """Whether the partitioned statevector fits on the cluster."""
        return 16.0 * self.local_amplitudes(num_qubits, num_nodes) <= self.node_memory_bytes

    # ------------------------------------------------------------------
    def local_gate_seconds(self, num_qubits: int, num_nodes: int) -> float:
        """Time for one gate acting only on node-local qubits."""
        return self.local_amplitudes(num_qubits, num_nodes) / self.amplitudes_per_second

    def global_gate_seconds(self, num_qubits: int, num_nodes: int) -> float:
        """Time for one gate on a global qubit: compute plus pairwise exchange."""
        local = self.local_amplitudes(num_qubits, num_nodes)
        compute = local / self.amplitudes_per_second
        if num_nodes == 1:
            return compute
        exchanged_bytes = 16.0 * local / 2.0  # half the local amplitudes swap nodes
        communication = (
            self.message_latency_seconds
            + exchanged_bytes / self.interconnect_bytes_per_second
        )
        return compute + communication

    def state_copy_seconds(self, num_qubits: int, num_nodes: int) -> float:
        """Time to copy the distributed state (each node copies its slice)."""
        local_bytes = 16.0 * self.local_amplitudes(num_qubits, num_nodes)
        # Copy bandwidth is taken to be the compute bandwidth (memory bound).
        return local_bytes / (16.0 * self.amplitudes_per_second)


#: Cluster of Xeon-6130 nodes matching the paper's evaluation platform,
#: connected by a 100 Gb/s-class interconnect.
XEON_CLUSTER = ClusterConfig(
    name="xeon_6130_cluster",
    node_memory_bytes=192e9,
    amplitudes_per_second=6.0e8,
    interconnect_bytes_per_second=1.2e10,
    message_latency_seconds=2.0e-6,
)
