"""``python -m repro lint`` — run the contract checker from the command line.

Exit codes follow the rest of the CLI: ``0`` clean, ``1`` findings at or
above the ``--fail-on`` threshold, ``2`` usage or configuration errors.
With no paths the installed ``repro`` package itself is linted, so the CI
gate and the acceptance check are the same invocation from any directory.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.lint.config import DEFAULT_ALLOWLIST, default_rules
from repro.lint.framework import LintConfig, LintConfigError, run_lint

__all__ = ["add_lint_arguments", "run_lint_cli"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``lint`` subcommand's arguments to ``parser``."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids or family prefixes "
             "(det, backend, mp, api); default: all rules",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="findings output format (default: text)",
    )
    parser.add_argument(
        "--fail-on",
        choices=("warning", "error"),
        default="error",
        help="mildest severity that fails the run (default: error)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="also write the full JSON report to this path "
             "(the CI findings artifact)",
    )
    parser.add_argument(
        "--no-allowlist",
        action="store_true",
        help="ignore the shipped allowlist (audit mode: show every finding)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the available rules and exit",
    )


def _default_target() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent


def run_lint_cli(args: argparse.Namespace) -> int:
    """Execute the lint subcommand; returns the process exit code."""
    rules = default_rules()
    if args.list_rules:
        width = max(len(rule.rule_id) for rule in rules)
        for rule in rules:
            print(f"{rule.rule_id.ljust(width)}  [{rule.severity}]  {rule.description}")
        return 0

    select = None
    if args.rules:
        select = tuple(token.strip() for token in args.rules.split(",") if token.strip())
        known = {rule.rule_id for rule in rules}
        families = {rule_id.split("-")[0] for rule_id in known}
        unknown = [t for t in select if t not in known and t not in families]
        if unknown:
            print(f"unknown rule(s): {', '.join(unknown)}; "
                  f"known: {', '.join(sorted(known))}")
            return 2

    paths = [Path(p) for p in args.paths] if args.paths else [_default_target()]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"no such path: {', '.join(str(p) for p in missing)}")
        return 2

    try:
        config = LintConfig(
            select=select,
            fail_on=args.fail_on,
            allowlist=() if args.no_allowlist else DEFAULT_ALLOWLIST,
        )
    except LintConfigError as error:
        print(f"lint configuration error: {error}")
        return 2

    report = run_lint(paths, rules, config)

    if args.output is not None:
        Path(args.output).write_text(
            json.dumps(report.to_dict(), indent=2) + "\n", encoding="utf-8"
        )

    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        for finding in report.findings:
            print(finding.render())
        summary = (
            f"{len(report.findings)} finding(s) in "
            f"{report.checked_files} file(s); "
            f"{len(report.suppressed)} allowlisted"
        )
        for entry in report.unused_allowlist:
            print(
                f"note: unused allowlist entry ({entry.rule_id}, "
                f"{entry.path_glob}, {entry.symbol_glob}) — remove it",
                file=sys.stderr,
            )
        print(summary)
    return 1 if report.failed else 0
