"""Serving-layer rule: no entropy or clock surface inside ``repro.serve``.

The serving front end is where non-determinism would be easiest to smuggle
in and hardest to notice: request IDs minted from ``uuid``, latency stamps
from ``time.time``, shuffle-by-default queues.  The repository's contract
is stricter — a response is a pure function of ``(circuit, noise, shots,
seed)`` and request IDs come from a :mod:`repro.core.pathrng` key chain —
so inside ``repro.serve`` this rule flags the *whole* entropy and clock
surface, not just the known draw calls:

* every reference into ``uuid``, ``secrets``, ``random``, ``os.urandom``
  and ``numpy.random`` (minus the entropy-free types);
* every reference into ``time`` and ``datetime`` — the serving layer has
  no sanctioned timer site at all; latency measurement goes through
  :mod:`repro.obs.clock` and histogram counters.

``det-rng``/``obs-clock`` already cover the draw/clock *calls* everywhere;
``serve-entropy`` additionally rejects mere imports and any helper of
those modules inside the serve package, so the boundary is visible at
review time rather than at the first nondeterministic incident.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.framework import Finding, ModuleContext, ModuleRule
from repro.lint.rules_determinism import (
    _ALLOWED_NP_RANDOM,
    _maximal_reference_nodes,
)

__all__ = ["ServeEntropyRule"]

#: Modules whose entire surface is banned inside ``repro.serve``.
_BANNED_MODULES = ("uuid", "secrets", "random", "time", "datetime")


class ServeEntropyRule(ModuleRule):
    """Forbid entropy sources and direct clocks inside ``repro.serve``."""

    rule_id = "serve-entropy"
    severity = "error"
    description = (
        "repro.serve may not touch uuid/secrets/random/numpy.random or "
        "time/datetime — request IDs come from pathrng, timers from "
        "repro.obs.clock"
    )

    def visit_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        # The lint root may be the package dir (module "serve.server") or
        # the source root (module "repro.serve.server"); accept both.
        module = ctx.module_name.removeprefix("repro.")
        if not (module == "serve" or module.startswith("serve.")):
            return
        for node in _maximal_reference_nodes(ctx.tree):
            qualified = ctx.qualified_name(node)
            if qualified is None:
                continue
            reason = self._flag_reason(qualified)
            if reason is not None:
                yield self.finding(ctx, node, reason, symbol=qualified)

    @staticmethod
    def _flag_reason(qualified: str) -> str | None:
        for banned in _BANNED_MODULES:
            if qualified == banned or qualified.startswith(banned + "."):
                hint = (
                    "timers route through repro.obs.clock"
                    if banned in ("time", "datetime")
                    else "request IDs and draws come from repro.core.pathrng"
                )
                return (
                    f"{qualified} inside repro.serve breaks the "
                    f"deterministic-service contract; {hint}"
                )
        if qualified == "os.urandom":
            return (
                "os.urandom inside repro.serve breaks the deterministic-"
                "service contract; request IDs come from repro.core.pathrng"
            )
        if qualified == "numpy.random" or qualified.startswith("numpy.random."):
            leaf = qualified[len("numpy.random") :].lstrip(".").split(".")[0]
            if leaf in _ALLOWED_NP_RANDOM:
                return None
            return (
                f"{qualified} inside repro.serve breaks the deterministic-"
                "service contract; draw from a pathrng PathStream"
            )
        return None
