"""``repro.lint``: the AST-based contract checker for this repository.

The bitwise-reproducibility guarantee rests on conventions no runtime test
enforces directly: randomness routes through :mod:`repro.core.pathrng`,
backends implement the multi-stream hook surface in matched pairs, and
everything crossing the process-pool boundary is module-level and picklable.
This package turns those conventions into mechanical checks — run them with
``python -m repro lint`` (see :mod:`repro.lint.cli`) or programmatically via
:func:`run_lint`.

Extending: subclass :class:`Rule` (or :class:`ModuleRule` for single-module
checks), give it a ``<family>-<name>`` id, and add it to
:func:`repro.lint.config.default_rules`.  Exemptions go in
:data:`repro.lint.config.DEFAULT_ALLOWLIST` and must carry a justification.
"""

from repro.lint.config import DEFAULT_ALLOWLIST, default_rules
from repro.lint.framework import (
    AllowlistEntry,
    Finding,
    LintConfig,
    LintConfigError,
    LintReport,
    ModuleRule,
    Project,
    Rule,
    run_lint,
)

__all__ = [
    "AllowlistEntry",
    "DEFAULT_ALLOWLIST",
    "Finding",
    "LintConfig",
    "LintConfigError",
    "LintReport",
    "ModuleRule",
    "Project",
    "Rule",
    "default_rules",
    "run_lint",
]
