"""Backend conformance rules: the multi-stream hook surface must hold.

Sharded execution is bitwise reproducible only because every registered
backend honours the same hook surface: the :class:`~repro.backends.base.
Backend` ABC's abstract methods, the paired per-row multi-stream hooks
(``apply_noise_events_multi`` / ``sample_outcomes_multi`` — overriding one
without the other desynchronises the sequential and batched traversals'
draw order), and a ``supports_batch`` flag consistent with the batch
allocation/sampling methods batch-aware engines key off.  A backend that
drifts here does not fail loudly — it produces *almost* identical counts,
which is the worst kind of wrong.

Two passes:

* **Static** (``backend-signature``, ``backend-multi-pair``,
  ``backend-batch-flag``) — walk every class in the linted tree that
  (transitively) subclasses ``Backend``, comparing overridden method
  signatures against the ABC's own AST (obtained from the installed
  ``repro.backends.base`` source, so fixture trees are checked against the
  real contract) and enforcing the hook pairings.
* **Runtime** (``backend-registry``) — import the real registry, resolve
  every registered name and introspect the instance: instantiation works,
  the instance is a ``Backend``, the multi hooks are overridden in pairs
  and ``supports_batch`` implies the batch surface.  This pass only runs
  when the linted tree contains ``repro.backends`` itself (it is skipped
  for fixture snippets).
"""

from __future__ import annotations

import ast
import inspect
from typing import Iterator

from repro.lint.framework import Finding, ModuleContext, Project, Rule

__all__ = [
    "BackendRegistryRule",
    "BackendStaticConformanceRule",
]

#: Hooks that must be overridden together (per-row multi-stream surface).
_MULTI_PAIRS = (("apply_noise_events_multi", "sample_outcomes_multi"),)
#: Hook -> hook it builds on: overriding the former without the latter means
#: the pre-drawn-uniforms fast path and the per-row path can disagree.
_REQUIRES = {"apply_noise_events_uniforms": "apply_noise_events_multi"}
#: Methods a ``supports_batch = True`` backend must provide somewhere in its
#: project-visible ancestry (batch-aware engines call all three).
_BATCH_SURFACE = ("allocate_batch", "sample_outcomes", "broadcast_into")

#: Qualified names under which the ABC is importable.
_BACKEND_QUALNAMES = {
    "repro.backends.base.Backend",
    "repro.backends.Backend",
    "repro.core.Backend",
    "repro.core.backends.Backend",
}


def _base_class_ast() -> ast.ClassDef | None:
    """AST of the real ``Backend`` ABC (the signature source of truth)."""
    try:
        from repro.backends import base as base_module

        tree = ast.parse(inspect.getsource(base_module))
    except (ImportError, OSError):  # pragma: no cover - repro always importable here
        return None
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == "Backend":
            return node
    return None  # pragma: no cover - base.py always defines Backend


def _methods_of(cls: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    return {
        item.name: item
        for item in cls.body
        if isinstance(item, ast.FunctionDef)
    }


def _positional_names(fn: ast.FunctionDef) -> list[str]:
    return [arg.arg for arg in (*fn.args.posonlyargs, *fn.args.args)]


def _required_positional_count(fn: ast.FunctionDef) -> int:
    return len(fn.args.posonlyargs) + len(fn.args.args) - len(fn.args.defaults)


def _backend_classes(
    project: Project,
) -> dict[str, tuple[ModuleContext, ast.ClassDef]]:
    """Classes in the linted tree that transitively subclass ``Backend``.

    Keyed by qualified name (``<module>.<Class>``); resolution runs to a
    fixpoint so ``BatchedNumpyBackend(OptimizedNumpyBackend)`` is found
    through ``OptimizedNumpyBackend(NumpyBackend)`` through
    ``NumpyBackend(Backend)``.
    """
    classes: dict[str, tuple[ModuleContext, ast.ClassDef]] = {}
    bases: dict[str, list[str]] = {}
    for ctx in project.modules:
        for node in ctx.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            qualified = f"{ctx.module_name}.{node.name}" if ctx.module_name else node.name
            classes[qualified] = (ctx, node)
            resolved = []
            for base in node.bases:
                name = ctx.qualified_name(base)
                if name is not None:
                    resolved.append(name)
            bases[qualified] = resolved

    backend_like = set(_BACKEND_QUALNAMES)
    changed = True
    while changed:
        changed = False
        for qualified, base_names in bases.items():
            if qualified in backend_like:
                continue
            if any(base in backend_like for base in base_names):
                backend_like.add(qualified)
                changed = True
    return {
        qualified: value
        for qualified, value in classes.items()
        if qualified in backend_like
    }


def _ancestor_methods(
    qualified: str,
    classes: dict[str, tuple[ModuleContext, ast.ClassDef]],
    bases_of: dict[str, list[str]],
) -> set[str]:
    """Method names defined by ``qualified``'s project-visible ancestors."""
    seen: set[str] = set()
    stack = list(bases_of.get(qualified, ()))
    visited: set[str] = set()
    while stack:
        base = stack.pop()
        if base in visited:
            continue
        visited.add(base)
        if base in classes:
            _, node = classes[base]
            seen.update(_methods_of(node))
            ctx = classes[base][0]
            for base_expr in node.bases:
                name = ctx.qualified_name(base_expr)
                if name is not None:
                    stack.append(name)
    return seen


class BackendStaticConformanceRule(Rule):
    """Static signature and hook-pairing walk over Backend subclasses."""

    rule_id = "backend-signature"
    severity = "error"
    description = (
        "Backend subclasses must match the ABC's method signatures and "
        "override the multi-stream hooks in pairs"
    )

    def run(self, project: Project) -> Iterator[Finding]:
        base_cls = _base_class_ast()
        base_methods = _methods_of(base_cls) if base_cls is not None else {}

        classes = _backend_classes(project)
        bases_of = {
            qualified: [
                name
                for base in node.bases
                if (name := ctx.qualified_name(base)) is not None
            ]
            for qualified, (ctx, node) in classes.items()
        }

        for qualified, (ctx, node) in classes.items():
            methods = _methods_of(node)
            inherited = _ancestor_methods(qualified, classes, bases_of)
            yield from self._check_signatures(ctx, node, methods, base_methods)
            yield from self._check_pairs(ctx, node, methods, inherited)
            yield from self._check_batch_flag(
                ctx, node, methods, inherited, base_methods
            )

    # ------------------------------------------------------------------
    def _check_signatures(
        self,
        ctx: ModuleContext,
        node: ast.ClassDef,
        methods: dict[str, ast.FunctionDef],
        base_methods: dict[str, ast.FunctionDef],
    ) -> Iterator[Finding]:
        for name, fn in methods.items():
            base_fn = base_methods.get(name)
            if base_fn is None or name.startswith("__"):
                continue
            if fn.args.vararg is not None or base_fn.args.vararg is not None:
                continue  # *args overrides delegate; nothing to compare
            ours = _positional_names(fn)
            theirs = _positional_names(base_fn)
            symbol = f"{node.name}.{name}"
            if ours[: len(theirs)] != theirs:
                yield self.finding(
                    ctx,
                    fn,
                    f"{symbol} signature ({', '.join(ours)}) does not match "
                    f"the Backend ABC ({', '.join(theirs)}); engines call "
                    "these hooks positionally across every backend",
                    symbol=symbol,
                )
            elif _required_positional_count(fn) > len(theirs):
                extra = ours[len(theirs) : _required_positional_count(fn)]
                yield self.finding(
                    ctx,
                    fn,
                    f"{symbol} adds required parameter(s) "
                    f"{', '.join(extra)} to a Backend ABC hook; extra "
                    "parameters must carry defaults",
                    symbol=symbol,
                )

    def _check_pairs(
        self,
        ctx: ModuleContext,
        node: ast.ClassDef,
        methods: dict[str, ast.FunctionDef],
        inherited: set[str],
    ) -> Iterator[Finding]:
        for first, second in _MULTI_PAIRS:
            for present, missing in ((first, second), (second, first)):
                if (
                    present in methods
                    and missing not in methods
                    and missing not in inherited
                ):
                    symbol = f"{node.name}.{present}"
                    yield Finding(
                        path=ctx.relpath,
                        line=methods[present].lineno,
                        col=methods[present].col_offset,
                        rule_id="backend-multi-pair",
                        severity="error",
                        message=(
                            f"{node.name} overrides {present} without "
                            f"{missing}; the per-row multi-stream hooks "
                            "must be overridden in pairs or the batched "
                            "and sequential traversals desynchronise"
                        ),
                        symbol=symbol,
                    )
        for dependent, prerequisite in _REQUIRES.items():
            if (
                dependent in methods
                and prerequisite not in methods
                and prerequisite not in inherited
            ):
                yield Finding(
                    path=ctx.relpath,
                    line=methods[dependent].lineno,
                    col=methods[dependent].col_offset,
                    rule_id="backend-multi-pair",
                    severity="error",
                    message=(
                        f"{node.name} defines {dependent} without "
                        f"{prerequisite}; the pre-drawn-uniforms fast path "
                        "must shadow a per-row implementation"
                    ),
                    symbol=f"{node.name}.{dependent}",
                )

    def _check_batch_flag(
        self,
        ctx: ModuleContext,
        node: ast.ClassDef,
        methods: dict[str, ast.FunctionDef],
        inherited: set[str],
        base_methods: dict[str, ast.FunctionDef],
    ) -> Iterator[Finding]:
        def _is_true_flag(item: ast.stmt) -> bool:
            if isinstance(item, ast.Assign):
                targets = item.targets
                value = item.value
            elif isinstance(item, ast.AnnAssign):
                targets = [item.target]
                value = item.value
            else:
                return False
            return (
                any(
                    isinstance(t, ast.Name) and t.id == "supports_batch"
                    for t in targets
                )
                and isinstance(value, ast.Constant)
                and value.value is True
            )

        declares_true = any(_is_true_flag(item) for item in node.body)
        if not declares_true:
            return
        available = set(methods) | inherited | set(base_methods)
        for required in _BATCH_SURFACE:
            if required not in available:
                yield Finding(
                    path=ctx.relpath,
                    line=node.lineno,
                    col=node.col_offset,
                    rule_id="backend-batch-flag",
                    severity="error",
                    message=(
                        f"{node.name} sets supports_batch = True but "
                        f"provides no {required}; batch-aware engines key "
                        "off the flag and call the whole batch surface"
                    ),
                    symbol=f"{node.name}.supports_batch",
                )


class BackendRegistryRule(Rule):
    """Import-and-introspect pass over the real backend registry."""

    rule_id = "backend-registry"
    severity = "error"
    description = (
        "every registered backend must instantiate, subclass Backend, pair "
        "its multi hooks and honour supports_batch (runtime introspection)"
    )

    def run(self, project: Project) -> Iterator[Finding]:
        yield from self._static_registrations(project)
        if not project.has_module("repro.backends.registry"):
            return  # fixture tree: the real registry is out of scope
        yield from self._introspect()

    # ------------------------------------------------------------------
    def _static_registrations(self, project: Project) -> Iterator[Finding]:
        """Flag ``register_backend`` call sites whose factory is anonymous."""
        register_names = {
            "repro.backends.registry.register_backend",
            "repro.backends.register_backend",
            "repro.core.backends.register_backend",
            "repro.core.register_backend",
        }
        for ctx in project.modules:
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                qualified = ctx.qualified_name(node.func)
                if qualified not in register_names:
                    continue
                factory = node.args[1] if len(node.args) > 1 else None
                if isinstance(factory, ast.Lambda):
                    yield self.finding(
                        ctx,
                        factory,
                        "register_backend factory is a lambda; register a "
                        "module-level class or named factory so backends "
                        "stay introspectable and picklable",
                        symbol=qualified,
                    )

    def _introspect(self) -> Iterator[Finding]:
        try:
            from repro.backends import Backend, available_backends, get_backend
            from repro.backends.base import Backend as AbcBackend
        except Exception as error:  # pragma: no cover - import always works in-tree
            yield Finding(
                path="repro/backends",
                line=1,
                col=0,
                rule_id=self.rule_id,
                severity="error",
                message=f"could not import the backend registry: {error}",
            )
            return
        for name in available_backends():
            try:
                instance = get_backend(name)
            except Exception as error:
                yield self._registry_finding(
                    name, f"backend {name!r} failed to instantiate: {error}"
                )
                continue
            if not isinstance(instance, Backend):
                yield self._registry_finding(
                    name,
                    f"backend {name!r} resolves to {type(instance).__name__}, "
                    "which is not a Backend subclass",
                )
                continue
            cls = type(instance)
            for first, second in _MULTI_PAIRS:
                overrides = {
                    hook: getattr(cls, hook, None) is not getattr(AbcBackend, hook)
                    for hook in (first, second)
                }
                if overrides[first] != overrides[second]:
                    present = first if overrides[first] else second
                    missing = second if overrides[first] else first
                    yield self._registry_finding(
                        name,
                        f"backend {name!r} ({cls.__name__}) overrides "
                        f"{present} but inherits {missing}; the multi-stream "
                        "hooks must be overridden in pairs",
                    )
            if getattr(instance, "supports_batch", False):
                for required in _BATCH_SURFACE:
                    if not callable(getattr(instance, required, None)):
                        yield self._registry_finding(
                            name,
                            f"backend {name!r} ({cls.__name__}) sets "
                            f"supports_batch but has no callable {required}",
                        )

    def _registry_finding(self, backend_name: str, message: str) -> Finding:
        return Finding(
            path="repro/backends/registry.py",
            line=1,
            col=0,
            rule_id=self.rule_id,
            severity="error",
            message=message,
            symbol=f"backend:{backend_name}",
        )
