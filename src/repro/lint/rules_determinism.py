"""Determinism rules: every random draw must route through ``pathrng``.

The repository's headline guarantee — bitwise-identical counts across
sequential, batched, serial-dispatched, pooled and deep-sharded execution —
holds because a trajectory's draws are a pure function of its tree path (see
:mod:`repro.core.pathrng`).  One stray ``np.random.default_rng()`` inside a
traversal silently re-ties results to process-local state and only surfaces
as a flaky differential-harness failure much later.  These rules flag every
entropy source that is *not* the path-keyed stream:

* ``det-rng`` — references to ``numpy.random`` draw APIs (``default_rng``,
  ``RandomState``, module-level draw functions), the stdlib ``random``
  module, ``secrets`` and ``os.urandom``.  Types that carry no entropy of
  their own (``numpy.random.Generator``, ``SeedSequence``, ``BitGenerator``
  — annotation and key-folding material) are exempt.
* ``det-clock`` — wall-clock reads (``time.time``, ``perf_counter`` and
  friends).  Clocks never feed randomness here, but a clock read inside an
  engine is how "cost model" quietly becomes "load-dependent behaviour";
  the single sanctioned site (:mod:`repro.obs.clock`) is allowlisted in
  :mod:`repro.lint.config`.
* ``obs-clock`` — the structural counterpart: *no* module outside
  ``repro.obs`` may read a clock directly, even for metrics.  Every timer
  routes through :mod:`repro.obs.clock`, which is what makes tracing
  provably inert — enabling a tracer cannot change counts, counters or RNG
  draws because the clock surface is confined to the observability layer.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.framework import Finding, ModuleContext, ModuleRule

__all__ = ["ForeignRandomRule", "ObsClockRule", "WallClockRule"]

#: numpy.random attributes that are *not* entropy sources: types used in
#: annotations and the seed-folding material pathrng builds keys from.
_ALLOWED_NP_RANDOM = {
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "Philox",
    "PCG64",
}

#: Wall-clock reads flagged by ``det-clock``.
_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
}


def _maximal_reference_nodes(tree: ast.Module) -> Iterator[ast.expr]:
    """Yield ``Name``/``Attribute`` nodes not nested in a larger attribute.

    Visiting only maximal chains reports ``np.random.default_rng`` once
    instead of once per attribute level.
    """
    parents: dict[int, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    for node in ast.walk(tree):
        if isinstance(node, (ast.Attribute, ast.Name)):
            parent = parents.get(id(node))
            if isinstance(parent, ast.Attribute) and parent.value is node:
                continue
            yield node


class ForeignRandomRule(ModuleRule):
    """Flag entropy sources other than the path-keyed streams."""

    rule_id = "det-rng"
    severity = "error"
    description = (
        "randomness must flow through repro.core.pathrng — numpy.random "
        "draw APIs, stdlib random, secrets and os.urandom are flagged"
    )

    def visit_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in _maximal_reference_nodes(ctx.tree):
            qualified = ctx.qualified_name(node)
            if qualified is None:
                continue
            flagged = self._flag_reason(qualified)
            if flagged is not None:
                yield self.finding(ctx, node, flagged, symbol=qualified)

    @staticmethod
    def _flag_reason(qualified: str) -> str | None:
        if qualified == "numpy.random" or qualified.startswith("numpy.random."):
            leaf = qualified[len("numpy.random") :].lstrip(".").split(".")[0]
            if leaf in _ALLOWED_NP_RANDOM:
                return None
            return (
                f"{qualified} bypasses the pathrng seeding contract; draw "
                "from a PathStream (or take an explicit stream argument)"
            )
        if qualified == "random" or qualified.startswith("random."):
            return (
                f"stdlib {qualified} is process-global state; use a "
                "path-keyed stream from repro.core.pathrng"
            )
        if qualified == "secrets" or qualified.startswith("secrets."):
            return f"{qualified} is an OS entropy source; simulation draws must be reproducible"
        if qualified == "os.urandom":
            return "os.urandom is an OS entropy source; simulation draws must be reproducible"
        return None


class WallClockRule(ModuleRule):
    """Flag wall-clock reads outside the sanctioned timing sites."""

    rule_id = "det-clock"
    severity = "error"
    description = (
        "wall-clock reads (time.time / perf_counter / ...) are flagged; "
        "metric and calibration timers are allowlisted per file"
    )

    def visit_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in _maximal_reference_nodes(ctx.tree):
            qualified = ctx.qualified_name(node)
            if qualified in _CLOCK_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"{qualified} reads the wall clock; results must not "
                    "depend on time (allowlist metric/calibration timers)",
                    symbol=qualified,
                )


class ObsClockRule(ModuleRule):
    """Confine direct clock reads to the ``repro.obs`` package.

    :mod:`repro.obs.clock` is the one sanctioned call site; everything else
    imports its helpers (``perf_seconds``, ``monotonic_seconds``,
    ``Stopwatch``).  Keeping the clock surface in one leaf module is the
    structural proof that tracing is inert: a tracer can only observe time,
    never leak it into simulation behaviour, because no engine, dispatcher
    or experiment module touches :mod:`time` directly.
    """

    rule_id = "obs-clock"
    severity = "error"
    description = (
        "monotonic/wall clock reads outside repro.obs are forbidden; "
        "route timers through repro.obs.clock"
    )

    def visit_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        # The lint root may be the package dir (module "obs.clock") or the
        # source root (module "repro.obs.clock"); accept both spellings.
        module = ctx.module_name.removeprefix("repro.")
        if module == "obs" or module.startswith("obs."):
            return
        for node in _maximal_reference_nodes(ctx.tree):
            qualified = ctx.qualified_name(node)
            if qualified in _CLOCK_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"{qualified} is a direct clock read outside repro.obs; "
                    "use repro.obs.clock (perf_seconds / monotonic_seconds "
                    "/ Stopwatch) so tracing stays provably inert",
                    symbol=qualified,
                )
