"""Multiprocessing-safety rules: the pool boundary only ships picklable work.

``PoolDispatcher`` sends ``(run_shard, ShardSpec)`` pairs through a
``ProcessPoolExecutor``.  That works under every start method precisely
because ``run_shard`` is a module-level function and a ``ShardSpec`` is a
tuple of plain data — a lambda, a nested closure or a bound method in
either position raises ``PicklingError`` under ``spawn`` and, worse,
*appears* to work under ``fork`` until the start method changes.  Likewise,
worker code that mutates module-level state reads back different values
under ``fork`` (inherited snapshot) and ``spawn`` (fresh import), which is
exactly the kind of divergence the bitwise contract forbids.

* ``mp-callable`` — lambdas, nested functions and bound methods handed to
  executor ``submit``/``map`` (``ProcessPoolExecutor`` or
  ``multiprocessing.Pool``) or stored on ``ShardSpec`` /
  ``SubtreeAssignment`` construction.
* ``mp-module-state`` — mutation of module-level mutable state (and
  ``global`` rebinding) inside functions of ``repro.dispatch`` modules, the
  code that runs on both sides of the pool boundary.
* ``mp-silent-except`` — bare ``except:`` anywhere in ``repro.dispatch``,
  and broad ``except Exception``/``BaseException`` handlers whose body
  swallows the error (``pass``/``continue``/``break``/a lone constant).
  The fault-tolerance contract is that every worker failure becomes a
  typed :class:`~repro.dispatch.faults.DispatchError` or a telemetry
  record — a silently-eaten exception is a shard that never reports, which
  the supervision loop would misread as a hang and retry forever.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.framework import Finding, ModuleContext, ModuleRule

__all__ = ["ExecutorCallableRule", "ModuleStateRule", "SilentExceptRule"]

#: Constructors whose instances cross the process boundary.
_EXECUTOR_TYPES = {
    "concurrent.futures.ProcessPoolExecutor",
    "concurrent.futures.process.ProcessPoolExecutor",
    "multiprocessing.Pool",
    "multiprocessing.pool.Pool",
}
#: Executor methods whose first argument ships to another process.
_SUBMIT_METHODS = {"submit", "map", "apply", "apply_async", "map_async", "imap"}
#: Dataclasses that are pickled whole into worker processes.
_SHIPPED_SPECS = {"ShardSpec", "SubtreeAssignment"}
#: Mutating method names on built-in containers.
_MUTATORS = {
    "append",
    "extend",
    "insert",
    "remove",
    "pop",
    "clear",
    "add",
    "discard",
    "update",
    "setdefault",
    "popitem",
}


def _nested_function_names(tree: ast.Module) -> set[str]:
    """Names of functions defined inside another function (closures)."""
    nested: set[str] = set()

    class _Visitor(ast.NodeVisitor):
        def __init__(self) -> None:
            self.depth = 0

        def _visit_fn(self, node: ast.AST) -> None:
            if self.depth > 0:
                nested.add(node.name)  # type: ignore[attr-defined]
            self.depth += 1
            self.generic_visit(node)
            self.depth -= 1

        visit_FunctionDef = _visit_fn
        visit_AsyncFunctionDef = _visit_fn

    _Visitor().visit(tree)
    return nested


def _executor_names(ctx: ModuleContext) -> set[str]:
    """Local names bound to executor instances (assign or ``with ... as``)."""
    names: set[str] = set()
    for node in ast.walk(ctx.tree):
        value = None
        target = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            target, value = node.optional_vars, node.context_expr
        if (
            isinstance(target, ast.Name)
            and isinstance(value, ast.Call)
            and ctx.qualified_name(value.func) in _EXECUTOR_TYPES
        ):
            names.add(target.id)
    return names


class ExecutorCallableRule(ModuleRule):
    """Flag non-picklable callables crossing the process-pool boundary."""

    rule_id = "mp-callable"
    severity = "error"
    description = (
        "lambdas, nested functions and bound methods must not be submitted "
        "to process pools or stored on ShardSpec/SubtreeAssignment"
    )

    def visit_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        nested = _nested_function_names(ctx.tree)
        executors = _executor_names(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            yield from self._check_submit(ctx, node, nested, executors)
            yield from self._check_spec_payload(ctx, node)

    # ------------------------------------------------------------------
    def _check_submit(
        self,
        ctx: ModuleContext,
        call: ast.Call,
        nested: set[str],
        executors: set[str],
    ) -> Iterator[Finding]:
        fn = call.func
        if not (
            isinstance(fn, ast.Attribute)
            and fn.attr in _SUBMIT_METHODS
            and isinstance(fn.value, ast.Name)
            and fn.value.id in executors
        ):
            return
        if not call.args:
            return
        payload = call.args[0]
        problem = self._payload_problem(ctx, payload, nested, callable_position=True)
        if problem is not None:
            yield self.finding(
                ctx,
                payload,
                f"{problem} passed to {fn.value.id}.{fn.attr}(); process "
                "pools can only ship module-level functions (see "
                "repro.dispatch.worker.run_shard)",
                symbol=f"{fn.value.id}.{fn.attr}",
            )

    def _check_spec_payload(
        self, ctx: ModuleContext, call: ast.Call
    ) -> Iterator[Finding]:
        name = call.func.attr if isinstance(call.func, ast.Attribute) else (
            call.func.id if isinstance(call.func, ast.Name) else None
        )
        if name not in _SHIPPED_SPECS:
            return
        nested = _nested_function_names(ctx.tree)
        for arg in (*call.args, *(kw.value for kw in call.keywords)):
            # Attribute reads (`self.noise_model`) are plain data here; only
            # lambdas and closures are provably unpicklable payloads.
            problem = self._payload_problem(ctx, arg, nested, callable_position=False)
            if problem is not None:
                yield self.finding(
                    ctx,
                    arg,
                    f"{problem} stored on {name}; shard specs are pickled "
                    "into worker processes and must hold plain data",
                    symbol=name,
                )

    @staticmethod
    def _payload_problem(
        ctx: ModuleContext,
        node: ast.expr,
        nested: set[str],
        callable_position: bool,
    ) -> str | None:
        if isinstance(node, ast.Lambda):
            return "lambda"
        if isinstance(node, ast.Name) and node.id in nested:
            return f"nested function {node.id!r}"
        if callable_position and isinstance(node, ast.Attribute):
            base = node.value
            # Any imported name (`worker.run_shard`, `Cls.method`) is
            # picklable by qualified reference; only methods bound to local
            # instances drag non-module state along (or fail outright).
            if isinstance(base, ast.Name):
                if base.id in ctx.module_names or base.id in ctx.imports:
                    return None
                return f"bound method {base.id}.{node.attr}"
        return None


class ModuleStateRule(ModuleRule):
    """Flag mutation of module-level state inside dispatch-package functions."""

    rule_id = "mp-module-state"
    severity = "error"
    description = (
        "repro.dispatch functions must not mutate module-level state; "
        "fork and spawn workers would observe different values"
    )

    def visit_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        if "dispatch/" not in ctx.relpath and "/dispatch" not in ctx.relpath:
            return
        mutable_globals = self._module_level_mutables(ctx.tree)
        for top in ctx.tree.body:
            if isinstance(top, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                yield from self._scan_function(ctx, top, mutable_globals)

    @staticmethod
    def _module_level_mutables(tree: ast.Module) -> set[str]:
        mutables: set[str] = set()
        builtin_containers = {"list", "dict", "set", "collections.defaultdict"}
        for node in tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None:
                continue
            is_mutable = isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)) or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in builtin_containers
            )
            if is_mutable:
                for target in targets:
                    if isinstance(target, ast.Name):
                        mutables.add(target.id)
        return mutables

    def _scan_function(
        self, ctx: ModuleContext, scope: ast.AST, mutable_globals: set[str]
    ) -> Iterator[Finding]:
        for node in ast.walk(scope):
            if isinstance(node, ast.Global):
                yield self.finding(
                    ctx,
                    node,
                    f"global {', '.join(node.names)} rebinds module state "
                    "inside a dispatch function; fork and spawn workers "
                    "would disagree about its value",
                    symbol=",".join(node.names),
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in mutable_globals
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            f"writes into module-level {target.value.id!r} "
                            "inside a dispatch function; worker processes "
                            "do not share this state",
                            symbol=target.value.id,
                        )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATORS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in mutable_globals
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"mutates module-level {node.func.value.id!r} via "
                    f".{node.func.attr}() inside a dispatch function; "
                    "worker processes do not share this state",
                    symbol=node.func.value.id,
                )


class SilentExceptRule(ModuleRule):
    """Flag exception swallowing inside the dispatch package.

    Dispatch code sits between a worker pool that can genuinely crash and a
    supervision loop whose whole job is to observe those failures.  Every
    handler must therefore either convert the error into a typed
    ``DispatchError``, record it (telemetry, retry bookkeeping) or re-raise
    — a bare ``except:`` (which also eats ``KeyboardInterrupt``) or a broad
    ``except Exception: pass`` turns a real fault into a silent wrong
    answer.  ``contextlib.suppress`` of *specific* OS errors around
    best-effort teardown is fine and not matched here.
    """

    rule_id = "mp-silent-except"
    severity = "error"
    description = (
        "repro.dispatch handlers must not swallow exceptions: bare except "
        "and silent broad except Exception/BaseException bodies are "
        "forbidden; convert failures to DispatchErrors or telemetry"
    )

    #: Handler types considered "broad": everything lands in them.
    _BROAD = {"Exception", "BaseException", "builtins.Exception", "builtins.BaseException"}

    def visit_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        if "dispatch/" not in ctx.relpath and "/dispatch" not in ctx.relpath:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx,
                    node,
                    "bare except: in dispatch code swallows everything "
                    "including KeyboardInterrupt; catch a specific type and "
                    "surface the failure as a DispatchError or telemetry",
                    symbol="except",
                )
                continue
            if self._is_broad(ctx, node.type) and self._is_silent(node.body):
                yield self.finding(
                    ctx,
                    node,
                    "broad except handler silently discards the error; "
                    "dispatch failures must become typed DispatchErrors or "
                    "telemetry records, never disappear",
                    symbol="except",
                )

    # ------------------------------------------------------------------
    def _is_broad(self, ctx: ModuleContext, node: ast.expr) -> bool:
        if isinstance(node, ast.Tuple):
            return any(self._is_broad(ctx, element) for element in node.elts)
        return ctx.qualified_name(node) in self._BROAD

    @staticmethod
    def _is_silent(body: list[ast.stmt]) -> bool:
        """True when the handler body provably does nothing with the error."""
        for statement in body:
            if isinstance(statement, (ast.Pass, ast.Continue, ast.Break)):
                continue
            if isinstance(statement, ast.Expr) and isinstance(
                statement.value, ast.Constant
            ):
                continue  # docstring / bare ellipsis
            return False
        return True
