"""Default rule set and the justified allowlist for the shipped tree.

Every entry here is a *deliberate* exemption from a contract rule, pinned to
one file and one symbol, with the reason it is sound.  The framework rejects
entries without a justification (:class:`~repro.lint.framework.
LintConfigError`), and entries that stop matching anything are reported as
unused by the CLI — so this list can only shrink or stay honest.

Grounds for exemption, in the order the rules list them:

* **Baseline simulators** (``core/baseline.py``, ``core/batched.py``,
  ``statevector/simulator.py``, ``density/simulator.py``) deliberately draw
  from seeded ``numpy`` ``Generator`` streams: they are the *comparison
  anchors* the tree engine is validated against, not participants in the
  path-keyed sharding contract (only :class:`~repro.core.engine.TQSimEngine`
  guarantees bitwise equality across execution modes).
* **Circuit construction** (``circuits/stdgates.py``, ``circuits/library``)
  draws circuit *structure* (Haar unitaries, secret strings) before any
  trajectory exists; every entry point takes a seed or Generator, and the
  unseeded fallbacks are user-facing conveniences outside the engine.
* **The clock surface** (``obs/clock.py``) is the only module that reads
  clocks; every metric and calibration timer (engine/dispatcher wall-time
  counters, ``core/copycost.py``, ``core/costmodel.py``, experiment
  harnesses, ``vqa/landscape.py``) imports its helpers, and the
  ``obs-clock`` rule rejects any direct read elsewhere — no timed value
  ever feeds a random draw or a simulation outcome.
* **Analysis helpers** (``statevector/sampling.py``,
  ``statevector/state.py``, ``metrics/statistics.py``,
  ``redunelim/simulator.py``) sample from exact distributions for
  post-processing; they accept an optional Generator and default to a local
  one only when the caller does not care about reproducibility.
"""

from __future__ import annotations

from repro.lint.framework import AllowlistEntry, Rule
from repro.lint.rules_backend import (
    BackendRegistryRule,
    BackendStaticConformanceRule,
)
from repro.lint.rules_determinism import (
    ForeignRandomRule,
    ObsClockRule,
    WallClockRule,
)
from repro.lint.rules_hygiene import (
    AnnotationRule,
    BareExceptRule,
    MutableDefaultRule,
)
from repro.lint.rules_multiprocessing import (
    ExecutorCallableRule,
    ModuleStateRule,
    SilentExceptRule,
)
from repro.lint.rules_serve import ServeEntropyRule

__all__ = ["DEFAULT_ALLOWLIST", "default_rules"]


def default_rules() -> list[Rule]:
    """Fresh instances of every shipped rule, determinism first."""
    return [
        ForeignRandomRule(),
        WallClockRule(),
        ObsClockRule(),
        ServeEntropyRule(),
        BackendStaticConformanceRule(),
        BackendRegistryRule(),
        ExecutorCallableRule(),
        ModuleStateRule(),
        SilentExceptRule(),
        AnnotationRule(),
        MutableDefaultRule(),
        BareExceptRule(),
    ]


_RNG = "numpy.random.default_rng"
_PC = "time.perf_counter"

DEFAULT_ALLOWLIST: tuple[AllowlistEntry, ...] = (
    # -- det-rng: baseline/reference simulators (comparison anchors) -------
    AllowlistEntry(
        "det-rng", "*core/baseline.py", _RNG,
        "per-shot baseline simulator: the seeded Generator stream is the "
        "paper's reference execution, outside the path-keyed tree contract",
    ),
    AllowlistEntry(
        "det-rng", "*core/batched.py", _RNG,
        "batched per-shot baseline simulator: seeded Generator stream, a "
        "comparison anchor outside the path-keyed tree contract",
    ),
    AllowlistEntry(
        "det-rng", "*statevector/simulator.py", _RNG,
        "ideal statevector simulator: seeded Generator for exact-"
        "distribution sampling, not a trajectory participant",
    ),
    AllowlistEntry(
        "det-rng", "*density/simulator.py", _RNG,
        "density-matrix reference simulator: seeded Generator for readout "
        "sampling on the exact distribution, not a trajectory participant",
    ),
    # -- det-rng: circuit construction (structure, not trajectories) -------
    AllowlistEntry(
        "det-rng", "*circuits/stdgates.py", _RNG,
        "Haar-random gate constructors draw circuit structure; callers pass "
        "a Generator, the unseeded fallback is a user-facing convenience",
    ),
    AllowlistEntry(
        "det-rng", "*circuits/library/*.py", _RNG,
        "model-circuit builders (QV/QSC/BV) draw circuit structure from a "
        "caller-provided seed before any trajectory exists",
    ),
    # -- det-rng: analysis and calibration helpers -------------------------
    AllowlistEntry(
        "det-rng", "*statevector/sampling.py", _RNG,
        "exact-distribution sampling helpers take an optional Generator; "
        "the fallback only serves callers outside the engine",
    ),
    AllowlistEntry(
        "det-rng", "*statevector/state.py", _RNG,
        "Statevector convenience constructors/samplers take an optional "
        "Generator; the fallback only serves callers outside the engine",
    ),
    AllowlistEntry(
        "det-rng", "*metrics/statistics.py", _RNG,
        "bootstrap statistics helper with a pinned default seed; "
        "post-processing only",
    ),
    AllowlistEntry(
        "det-rng", "*redunelim/simulator.py", _RNG,
        "redundancy-elimination study seeds its own Generator for parameter "
        "draws; an offline analysis, not an engine path",
    ),
    AllowlistEntry(
        "det-rng", "*core/copycost.py", _RNG,
        "copy-cost calibration perturbs a scratch state with a pinned seed; "
        "measurement harness, not a simulation path",
    ),
    AllowlistEntry(
        "det-rng", "*core/costmodel.py", _RNG,
        "cost-model calibration builds scratch states/draws with pinned "
        "seeds; measurement harness, not a simulation path",
    ),
    # -- det-clock: the single sanctioned clock site -----------------------
    # Every other module (engine CostCounters, dispatcher wall times, the
    # resilient supervision loop, calibration timers, experiment harnesses)
    # now routes through these helpers, so one entry covers the whole tree
    # and the ``obs-clock`` rule enforces the routing structurally.
    AllowlistEntry(
        "det-clock", "*obs/clock.py", "time.*",
        "repro.obs.clock is the one sanctioned clock surface: it wraps "
        "time.perf_counter/perf_counter_ns/monotonic behind helpers every "
        "timer imports, so timing is observable yet provably unable to "
        "feed a draw or an outcome",
    ),
)
