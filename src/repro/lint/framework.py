"""The AST lint framework: rules, findings, allowlists and the runner.

``repro.lint`` is a project-specific static-analysis pass: it turns the
invariants the differential-test harness checks *dynamically* — every random
draw routes through :mod:`repro.core.pathrng`, every registered backend
implements the multi-stream hook surface, everything crossing the process
pool boundary is picklable — into fast, mechanical checks that run before a
single trajectory is simulated.

The pieces:

* :class:`Finding` — one diagnostic: path, line, rule id, severity, message
  and the *symbol* that triggered it (the symbol is what allowlist entries
  match against, so an exemption stays pinned to e.g.
  ``numpy.random.default_rng`` in one file instead of silencing a rule).
* :class:`Rule` — the extension point.  A rule sees the whole
  :class:`Project` (every parsed module plus import resolution) and yields
  findings; single-module rules subclass :class:`ModuleRule`.
* :class:`AllowlistEntry` — a justified exemption.  Entries *must* carry a
  non-empty justification — :class:`LintConfigError` otherwise — which is
  how the CLI guarantees "zero unjustified allowlist entries" structurally.
* :func:`run_lint` — parse, run rules, filter allowlisted findings, report.
"""

from __future__ import annotations

import ast
import fnmatch
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "AllowlistEntry",
    "Finding",
    "LintConfig",
    "LintConfigError",
    "LintReport",
    "ModuleContext",
    "ModuleRule",
    "Project",
    "Rule",
    "SEVERITIES",
    "run_lint",
]

#: Recognised severities, mildest first (order is what ``--fail-on`` keys on).
SEVERITIES = ("warning", "error")


class LintConfigError(ValueError):
    """Raised for malformed lint configuration (e.g. unjustified allowlist)."""


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a rule."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: str
    message: str
    #: Qualified symbol that triggered the finding (allowlist match key).
    symbol: str = ""

    def to_dict(self) -> dict:
        """JSON-serialisable form (the CI artifact schema)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity,
            "message": self.message,
            "symbol": self.symbol,
        }

    def render(self) -> str:
        """One-line human-readable form."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity}] {self.message}"
        )


@dataclass(frozen=True)
class AllowlistEntry:
    """A justified exemption for findings of one rule in matching files.

    ``path_glob`` and ``symbol_glob`` are :mod:`fnmatch` patterns matched
    against the finding's posix path and qualified symbol.  ``justification``
    is mandatory and non-empty: the allowlist is part of the contract's
    paper trail, not an off switch.
    """

    rule_id: str
    path_glob: str
    symbol_glob: str = "*"
    justification: str = ""

    def __post_init__(self) -> None:
        if not self.justification.strip():
            raise LintConfigError(
                f"allowlist entry ({self.rule_id!r}, {self.path_glob!r}) "
                "has no justification; every exemption must say why"
            )

    def matches(self, finding: Finding) -> bool:
        """True when this entry suppresses ``finding``."""
        return (
            finding.rule_id == self.rule_id
            and fnmatch.fnmatch(finding.path, self.path_glob)
            and fnmatch.fnmatch(finding.symbol or finding.message, self.symbol_glob)
        )


@dataclass(frozen=True)
class LintConfig:
    """Rule selection, failure threshold and the allowlist."""

    #: Rule ids or family prefixes (``det``, ``backend``, ...); None = all.
    select: tuple[str, ...] | None = None
    #: Mildest severity that makes the run fail ("warning" or "error").
    fail_on: str = "error"
    allowlist: tuple[AllowlistEntry, ...] = ()

    def __post_init__(self) -> None:
        if self.fail_on not in SEVERITIES:
            raise LintConfigError(
                f"fail_on must be one of {SEVERITIES}, got {self.fail_on!r}"
            )

    def rule_selected(self, rule_id: str) -> bool:
        """True when ``rule_id`` (or its family prefix) is selected."""
        if self.select is None:
            return True
        return any(
            rule_id == token or rule_id.startswith(token + "-")
            for token in self.select
        )


class ModuleContext:
    """One parsed module: source, AST, and an import-resolution table."""

    def __init__(self, path: Path, relpath: str, source: str) -> None:
        self.path = path
        self.relpath = relpath
        self.source = source
        self.tree = ast.parse(source, filename=str(path))
        #: Local name -> fully qualified dotted name it was imported as.
        self.imports: dict[str, str] = {}
        #: Local names bound by plain ``import pkg.mod`` (module objects).
        self.module_names: set[str] = set()
        self._collect_imports()

    @property
    def module_name(self) -> str:
        """Dotted module name inferred from the path (``repro.core.engine``)."""
        parts = list(Path(self.relpath).with_suffix("").parts)
        if "src" in parts:
            parts = parts[parts.index("src") + 1 :]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    qualified = alias.name if alias.asname else alias.name.split(".")[0]
                    self.imports[local] = qualified
                    self.module_names.add(local)
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    # Relative import: anchor at this module's package.
                    package = self.module_name.split(".")
                    base_parts = package[: len(package) - node.level]
                    base = ".".join(base_parts + ([node.module] if node.module else []))
                else:
                    base = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.imports[local] = f"{base}.{alias.name}" if base else alias.name

    def qualified_name(self, node: ast.expr) -> str | None:
        """Resolve a ``Name``/``Attribute`` chain to a dotted name, if possible.

        ``np.random.default_rng`` resolves through ``import numpy as np`` to
        ``numpy.random.default_rng``; unresolvable expressions (calls,
        subscripts, locals) return None.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.imports.get(node.id, node.id)
        return ".".join([root, *reversed(parts)])


class Project:
    """Every module under the lint roots, parsed once and shared by rules."""

    def __init__(
        self, roots: Sequence[Path], modules: list[ModuleContext], parse_errors: list[Finding]
    ) -> None:
        self.roots = list(roots)
        self.modules = modules
        self.parse_errors = parse_errors

    @classmethod
    def load(cls, paths: Sequence[Path]) -> "Project":
        """Parse every ``.py`` file under ``paths`` (files or directories)."""
        modules: list[ModuleContext] = []
        errors: list[Finding] = []
        roots = [Path(p) for p in paths]
        for root in roots:
            files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
            base = root if root.is_dir() else root.parent
            for file in files:
                try:
                    relpath = file.relative_to(base).as_posix()
                except ValueError:
                    relpath = file.as_posix()
                source = file.read_text(encoding="utf-8")
                try:
                    modules.append(ModuleContext(file, relpath, source))
                except SyntaxError as error:
                    errors.append(
                        Finding(
                            path=relpath,
                            line=error.lineno or 1,
                            col=error.offset or 0,
                            rule_id="parse-error",
                            severity="error",
                            message=f"syntax error: {error.msg}",
                        )
                    )
        return cls(roots, modules, errors)

    def has_module(self, dotted: str) -> bool:
        """True when ``dotted`` names a module inside the linted tree."""
        return any(ctx.module_name == dotted for ctx in self.modules)


class Rule(ABC):
    """One named invariant check over the whole project."""

    #: Stable identifier, ``<family>-<name>`` (family is the ``--rules`` key).
    rule_id: str = "abstract"
    #: Default severity of this rule's findings.
    severity: str = "error"
    #: One-line description shown by ``--list-rules``.
    description: str = ""

    @abstractmethod
    def run(self, project: Project) -> Iterator[Finding]:
        """Yield every finding in ``project``."""

    def finding(
        self, ctx: ModuleContext, node: ast.AST, message: str, symbol: str = ""
    ) -> Finding:
        """Build a finding anchored at ``node`` in ``ctx``."""
        return Finding(
            path=ctx.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            severity=self.severity,
            message=message,
            symbol=symbol,
        )


class ModuleRule(Rule):
    """Convenience base for rules that inspect one module at a time."""

    def run(self, project: Project) -> Iterator[Finding]:
        for ctx in project.modules:
            yield from self.visit_module(ctx)

    @abstractmethod
    def visit_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield every finding in one module."""


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: list[Finding]
    suppressed: list[tuple[Finding, AllowlistEntry]]
    unused_allowlist: list[AllowlistEntry]
    checked_files: int
    fail_on: str = "error"

    @property
    def failed(self) -> bool:
        """True when any finding meets the configured failure threshold."""
        threshold = SEVERITIES.index(self.fail_on)
        return any(
            SEVERITIES.index(f.severity) >= threshold for f in self.findings
        )

    def to_dict(self) -> dict:
        """JSON-serialisable report (uploaded as the CI findings artifact)."""
        return {
            "checked_files": self.checked_files,
            "fail_on": self.fail_on,
            "failed": self.failed,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [
                {"finding": f.to_dict(), "justification": entry.justification}
                for f, entry in self.suppressed
            ],
            "unused_allowlist": [
                {
                    "rule": entry.rule_id,
                    "path": entry.path_glob,
                    "symbol": entry.symbol_glob,
                    "justification": entry.justification,
                }
                for entry in self.unused_allowlist
            ],
        }


def run_lint(
    paths: Sequence[Path | str],
    rules: Iterable[Rule],
    config: LintConfig | None = None,
) -> LintReport:
    """Run ``rules`` over every module under ``paths`` and apply the config.

    Findings matching an allowlist entry are moved to ``report.suppressed``
    (with the entry's justification); allowlist entries that suppressed
    nothing are reported under ``report.unused_allowlist`` so stale
    exemptions surface instead of rotting.
    """
    config = config if config is not None else LintConfig()
    project = Project.load([Path(p) for p in paths])
    raw: list[Finding] = list(project.parse_errors)
    for rule in rules:
        if not config.rule_selected(rule.rule_id):
            continue
        raw.extend(rule.run(project))
    raw.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))

    kept: list[Finding] = []
    suppressed: list[tuple[Finding, AllowlistEntry]] = []
    used: set[int] = set()
    for finding in raw:
        entry = next((e for e in config.allowlist if e.matches(finding)), None)
        if entry is None:
            kept.append(finding)
        else:
            suppressed.append((finding, entry))
            used.add(id(entry))
    unused = [e for e in config.allowlist if id(e) not in used]
    return LintReport(
        findings=kept,
        suppressed=suppressed,
        unused_allowlist=unused,
        checked_files=len(project.modules),
        fail_on=config.fail_on,
    )
