"""API-hygiene rules: the public engine/backend surface stays typed and safe.

These are the slow-burn hazards: a public hook without annotations lets a
new backend drift from the contract without mypy noticing (the conformance
rules need a *typed* source of truth), a mutable default argument is shared
state across calls — across *shards*, for anything reached from worker
processes — and a bare ``except`` eats ``KeyboardInterrupt`` inside worker
loops, turning Ctrl-C into a hung pool.

* ``api-annotations`` (warning) — public methods and functions in the
  engine/backend/dispatch/pathrng modules missing parameter or return
  annotations.
* ``api-mutable-default`` (error) — ``def f(x=[])`` / ``{}`` / ``set()``
  and friends, anywhere.
* ``api-bare-except`` (error) — ``except:`` handlers, anywhere.
"""

from __future__ import annotations

import ast
import fnmatch
from typing import Iterator

from repro.lint.framework import Finding, ModuleContext, ModuleRule

__all__ = ["AnnotationRule", "BareExceptRule", "MutableDefaultRule"]

#: Files whose public surface must be fully annotated (the contract files).
ANNOTATION_SCOPE = (
    "*core/engine.py",
    "*core/pathrng.py",
    "*backends/*.py",
    "*dispatch/*.py",
)


def _functions_with_parents(
    tree: ast.Module,
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, ast.AST]]:
    parents: dict[int, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, parents[id(node)]


class AnnotationRule(ModuleRule):
    """Public contract-surface methods must be fully annotated."""

    rule_id = "api-annotations"
    severity = "warning"
    description = (
        "public engine/backend/dispatch methods must annotate every "
        "parameter and the return type (mypy's source of truth)"
    )

    def visit_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not any(fnmatch.fnmatch(ctx.relpath, glob) for glob in ANNOTATION_SCOPE):
            return
        for fn, parent in _functions_with_parents(ctx.tree):
            if fn.name.startswith("_") and fn.name != "__init__":
                continue
            if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested helper, not public surface
            if isinstance(parent, ast.ClassDef) and parent.name.startswith("_"):
                continue
            owner = f"{parent.name}." if isinstance(parent, ast.ClassDef) else ""
            symbol = f"{owner}{fn.name}"
            missing = [
                arg.arg
                for arg in (
                    *fn.args.posonlyargs,
                    *fn.args.args,
                    *fn.args.kwonlyargs,
                )
                if arg.annotation is None and arg.arg not in ("self", "cls")
            ]
            if missing:
                yield self.finding(
                    ctx,
                    fn,
                    f"{symbol} leaves parameter(s) {', '.join(missing)} "
                    "unannotated; the contract surface is typed",
                    symbol=symbol,
                )
            if fn.returns is None and fn.name != "__init__":
                yield self.finding(
                    ctx,
                    fn,
                    f"{symbol} has no return annotation; the contract "
                    "surface is typed",
                    symbol=symbol,
                )


class MutableDefaultRule(ModuleRule):
    """Flag mutable default arguments."""

    rule_id = "api-mutable-default"
    severity = "error"
    description = "default arguments must not be mutable (shared across calls)"

    _MUTABLE_CALLS = {"list", "dict", "set", "bytearray"}

    def visit_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        for fn, _parent in _functions_with_parents(ctx.tree):
            defaults = [*fn.args.defaults, *fn.args.kw_defaults]
            for default in defaults:
                if default is None:
                    continue
                if isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in self._MUTABLE_CALLS
                ):
                    yield self.finding(
                        ctx,
                        default,
                        f"{fn.name} has a mutable default argument; one "
                        "instance is shared across every call (and every "
                        "shard) — default to None instead",
                        symbol=fn.name,
                    )


class BareExceptRule(ModuleRule):
    """Flag bare ``except:`` handlers."""

    rule_id = "api-bare-except"
    severity = "error"
    description = (
        "bare except swallows KeyboardInterrupt/SystemExit; catch Exception "
        "or something narrower"
    )

    def visit_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    ctx,
                    node,
                    "bare except: swallows KeyboardInterrupt and SystemExit "
                    "(hangs worker pools); name the exception type",
                    symbol="except",
                )
