"""Analytic speedup formulas (paper Section 3.6) and slowdown estimates."""

from __future__ import annotations

from dataclasses import dataclass
from repro.core.partitioners import PartitionPlan
from repro.core.tree import TreeStructure

__all__ = [
    "max_speedup_equal_subcircuits",
    "plan_speedup",
    "SpeedupBreakdown",
    "speedup_breakdown",
    "noisy_over_ideal_slowdown",
]


def max_speedup_equal_subcircuits(num_subcircuits: int, shots: int) -> float:
    """Paper Section 3.6: ``k*N / ((k-1) + N)`` for ``k`` equal subcircuits.

    This is the upper bound obtained with the maximally reusing tree
    ``(1, N, 1, ...)`` pattern and ignores state-copy overhead and accuracy.
    """
    return TreeStructure.ideal_equal_partition_speedup(num_subcircuits, shots)


def plan_speedup(plan: PartitionPlan, copy_cost_in_gates: float = 0.0,
                 baseline_shots: int | None = None) -> float:
    """Analytic speedup of a concrete partition plan over the baseline."""
    return plan.theoretical_speedup(copy_cost_in_gates, baseline_shots)


@dataclass(frozen=True)
class SpeedupBreakdown:
    """Where a plan's computation goes, in gate-equivalents."""

    baseline_gate_applications: int
    tqsim_gate_applications: int
    state_copies: int
    copy_cost_in_gates: float

    @property
    def tqsim_total_gate_equivalents(self) -> float:
        """TQSim work including the copy overhead."""
        return self.tqsim_gate_applications + self.state_copies * self.copy_cost_in_gates

    @property
    def computation_reduction(self) -> float:
        """Fraction of the baseline's work that TQSim avoids."""
        if self.baseline_gate_applications == 0:
            return 0.0
        return 1.0 - self.tqsim_total_gate_equivalents / self.baseline_gate_applications

    @property
    def speedup(self) -> float:
        """Baseline work divided by TQSim work."""
        total = self.tqsim_total_gate_equivalents
        return self.baseline_gate_applications / total if total > 0 else float("inf")


def speedup_breakdown(plan: PartitionPlan, copy_cost_in_gates: float,
                      baseline_shots: int | None = None) -> SpeedupBreakdown:
    """Break a plan's analytic speedup into its cost components."""
    shots = baseline_shots if baseline_shots is not None else plan.total_outcomes
    return SpeedupBreakdown(
        baseline_gate_applications=shots * plan.total_gates,
        tqsim_gate_applications=plan.tree.computation_cost(plan.subcircuit_lengths),
        state_copies=plan.tree.state_copies,
        copy_cost_in_gates=copy_cost_in_gates,
    )


def noisy_over_ideal_slowdown(shots: int, noise_events_per_gate: float = 1.0,
                              ideal_sampling_overhead: float = 1.0) -> float:
    """Estimate the Figure-1 slowdown of noisy over ideal simulation.

    An ideal multi-shot simulation runs the circuit once and samples all
    outcomes from the final state; a noisy one repeats the full circuit per
    shot and additionally applies noise operators.  The slowdown is therefore
    roughly ``shots * (1 + noise_events_per_gate) / ideal_sampling_overhead``.
    """
    if shots < 1:
        raise ValueError("shots must be >= 1")
    if noise_events_per_gate < 0 or ideal_sampling_overhead <= 0:
        raise ValueError("invalid overhead parameters")
    return shots * (1.0 + noise_events_per_gate) / ideal_sampling_overhead
