"""Analytical cost, memory and utilisation models."""

from repro.analysis.hpc import (
    FRONTIER,
    HPC_SYSTEMS,
    PERLMUTTER,
    SUMMIT,
    HPCSystem,
    memory_utilization,
    tqsim_memory_utilization,
)
from repro.analysis.memory import (
    EL_CAPITAN_MEMORY_BYTES,
    LAPTOP_MEMORY_BYTES,
    XEON_NODE_MEMORY_BYTES,
    MemoryScalingPoint,
    baseline_simulation_bytes,
    density_matrix_bytes,
    max_density_matrix_qubits,
    max_statevector_qubits,
    memory_scaling_table,
    statevector_bytes,
    tqsim_simulation_bytes,
)
from repro.analysis.parallel_shots import (
    ParallelShotPoint,
    parallel_shot_speedup,
    parallel_shot_sweep,
)
from repro.analysis.speedup import (
    SpeedupBreakdown,
    max_speedup_equal_subcircuits,
    noisy_over_ideal_slowdown,
    plan_speedup,
    speedup_breakdown,
)

__all__ = [
    "statevector_bytes",
    "density_matrix_bytes",
    "baseline_simulation_bytes",
    "tqsim_simulation_bytes",
    "max_statevector_qubits",
    "max_density_matrix_qubits",
    "memory_scaling_table",
    "MemoryScalingPoint",
    "LAPTOP_MEMORY_BYTES",
    "EL_CAPITAN_MEMORY_BYTES",
    "XEON_NODE_MEMORY_BYTES",
    "HPCSystem",
    "FRONTIER",
    "SUMMIT",
    "PERLMUTTER",
    "HPC_SYSTEMS",
    "memory_utilization",
    "tqsim_memory_utilization",
    "ParallelShotPoint",
    "parallel_shot_speedup",
    "parallel_shot_sweep",
    "max_speedup_equal_subcircuits",
    "plan_speedup",
    "speedup_breakdown",
    "SpeedupBreakdown",
    "noisy_over_ideal_slowdown",
]
