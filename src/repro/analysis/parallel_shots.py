"""Parallel-shot saturation model (paper Figure 8).

The paper shows that batching several noisy shots on one GPU only helps while
the per-gate kernels underutilise the device: a 20-qubit statevector update
does not saturate an A100, so running 2–16 shots concurrently amortises the
kernel-launch overhead, but beyond ~24 qubits each update already fills the
device and parallel shots bring nothing (even though the extra memory is
negligible).  The model below reproduces that behaviour from a device
profile's overhead/bandwidth parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.backends import A100, DeviceProfile

__all__ = ["ParallelShotPoint", "parallel_shot_speedup", "parallel_shot_sweep"]


@dataclass(frozen=True)
class ParallelShotPoint:
    """One (qubits, parallel shots) sample of the Figure-8 sweep."""

    num_qubits: int
    parallel_shots: int
    speedup: float
    memory_bytes: float
    memory_fraction: float


def parallel_shot_speedup(num_qubits: int, parallel_shots: int,
                          device: DeviceProfile = A100) -> float:
    """Speedup of running ``parallel_shots`` trajectories as one batch.

    Per gate, serial execution costs ``p * max(overhead, transfer)`` while a
    batched kernel costs ``overhead + p * transfer``; their ratio is the
    speedup, which saturates at ``1 + overhead/transfer`` and approaches 1
    once a single statevector update saturates the device.
    """
    if parallel_shots < 1:
        raise ValueError("parallel_shots must be >= 1")
    transfer = 2.0 * DeviceProfile.statevector_bytes(num_qubits) / device.bytes_per_second
    overhead = device.gate_overhead_seconds
    serial = parallel_shots * (overhead + transfer)
    batched = overhead + parallel_shots * transfer
    return serial / batched


def parallel_shot_sweep(
    qubit_range=(20, 21, 22, 23, 24, 25),
    shot_counts=(1, 2, 4, 8, 16),
    device: DeviceProfile = A100,
) -> list[ParallelShotPoint]:
    """The full Figure-8 sweep: speedup and memory use per configuration."""
    points: list[ParallelShotPoint] = []
    for num_qubits in qubit_range:
        for parallel_shots in shot_counts:
            memory = parallel_shots * DeviceProfile.statevector_bytes(num_qubits)
            points.append(
                ParallelShotPoint(
                    num_qubits=num_qubits,
                    parallel_shots=parallel_shots,
                    speedup=parallel_shot_speedup(num_qubits, parallel_shots, device),
                    memory_bytes=memory,
                    memory_fraction=memory / device.memory_bytes,
                )
            )
    return points
