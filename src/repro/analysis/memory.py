"""Memory-footprint models (paper Figures 4, 5 and 9).

All sizes assume complex128 amplitudes (16 bytes), the format every simulator
in this package uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.costmodel import CostModel

__all__ = [
    "AdmissionDecision",
    "admit_plan",
    "statevector_bytes",
    "density_matrix_bytes",
    "baseline_simulation_bytes",
    "tqsim_simulation_bytes",
    "batched_tree_pool_states",
    "batched_tree_simulation_bytes",
    "max_batch_for_budget",
    "max_statevector_qubits",
    "max_density_matrix_qubits",
    "MemoryScalingPoint",
    "memory_scaling_table",
    "LAPTOP_MEMORY_BYTES",
    "EL_CAPITAN_MEMORY_BYTES",
    "XEON_NODE_MEMORY_BYTES",
]

#: Reference capacities used by Figure 4: a 16 GB laptop and El Capitan
#: (~5.4 PB of aggregate memory), plus the paper's Xeon evaluation node.
LAPTOP_MEMORY_BYTES = 16e9
EL_CAPITAN_MEMORY_BYTES = 5.4e15
XEON_NODE_MEMORY_BYTES = 192e9

_AMPLITUDE_BYTES = 16.0


def statevector_bytes(num_qubits: int) -> float:
    """Memory of one statevector: ``16 * 2**n`` bytes."""
    if num_qubits < 1:
        raise ValueError("num_qubits must be >= 1")
    return _AMPLITUDE_BYTES * (2.0**num_qubits)


def density_matrix_bytes(num_qubits: int) -> float:
    """Memory of one density matrix: ``16 * 4**n`` bytes."""
    if num_qubits < 1:
        raise ValueError("num_qubits must be >= 1")
    return _AMPLITUDE_BYTES * (4.0**num_qubits)


def baseline_simulation_bytes(num_qubits: int) -> float:
    """Peak memory of the baseline trajectory simulator (one working state)."""
    return statevector_bytes(num_qubits)


def tqsim_simulation_bytes(num_qubits: int, num_subcircuits: int) -> float:
    """Peak memory of TQSim: one stored state per non-leaf layer + working state.

    This is the Figure-9 overhead: linear in the number of subcircuits, never
    exponential, and therefore far below the node's memory limit for any
    realistic tree depth.
    """
    if num_subcircuits < 1:
        raise ValueError("num_subcircuits must be >= 1")
    stored_states = max(num_subcircuits - 1, 0) + 1
    return stored_states * statevector_bytes(num_qubits) + statevector_bytes(num_qubits)


def batched_tree_pool_states(arities, max_batch: int) -> int:
    """Pooled statevectors of the batched tree engine: ``sum_i min(A_i, cap)``.

    The batched traversal holds one ``(min(A_i, max_batch), 2**n)`` buffer
    per layer (see :class:`~repro.core.engine.TQSimEngine`); this is its
    total row count, the batched counterpart of the sequential engine's one
    state per layer.
    """
    if max_batch < 1:
        raise ValueError("max_batch must be >= 1")
    arities = tuple(int(a) for a in arities)
    if not arities or any(a < 1 for a in arities):
        raise ValueError("arities must be a non-empty sequence of >= 1")
    return sum(min(a, max_batch) for a in arities)


def batched_tree_simulation_bytes(num_qubits: int, arities,
                                  max_batch: int) -> float:
    """Peak memory of the batched tree engine for the given plan and cap."""
    return batched_tree_pool_states(arities, max_batch) * statevector_bytes(
        num_qubits
    )


def max_batch_for_budget(num_qubits: int, arities,
                         memory_bytes: float) -> int:
    """Largest ``max_batch`` whose batched-tree pool fits the memory budget.

    This is the Figure-9 trade-off knob: a larger cap amortises more
    per-gate dispatch across sibling trajectories, a smaller one shrinks the
    ``sum_i min(A_i, cap)`` statevector footprint toward the sequential
    engine's one state per layer.  Returns at least 1 (the sequential
    footprint) even when the budget is smaller than that.
    """
    best = 1
    ceiling = max(int(a) for a in arities)
    for candidate in range(2, ceiling + 1):
        if batched_tree_simulation_bytes(num_qubits, arities,
                                         candidate) > memory_bytes:
            break
        best = candidate
    return best


def max_statevector_qubits(memory_bytes: float) -> int:
    """Largest width whose statevector fits in the given memory."""
    qubits = 0
    while statevector_bytes(qubits + 1) <= memory_bytes:
        qubits += 1
    return qubits


def max_density_matrix_qubits(memory_bytes: float) -> int:
    """Largest width whose density matrix fits in the given memory."""
    qubits = 0
    while density_matrix_bytes(qubits + 1) <= memory_bytes:
        qubits += 1
    return qubits


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of admitting one partition plan under a memory budget.

    ``max_batch`` is the admitted sibling-batch cap (1 means the batched
    pool had to collapse to the sequential footprint), ``peak_bytes`` the
    pool size at that cap.  When a calibrated
    :class:`~repro.core.costmodel.CostModel` was supplied the two
    ``predicted_*_seconds`` legs price both traversals at the admitted cap
    and ``use_batched`` picks the faster one; without a model the decision
    falls back to "batched whenever the cap allows more than one row".
    """

    fits_memory: bool
    max_batch: int
    peak_bytes: float
    use_batched: bool
    reason: str
    predicted_batched_seconds: float | None = None
    predicted_sequential_seconds: float | None = None

    @property
    def predicted_seconds(self) -> float | None:
        """Predicted wall time of the admitted traversal (model runs only)."""
        if self.predicted_batched_seconds is None:
            return None
        return (
            self.predicted_batched_seconds
            if self.use_batched
            else self.predicted_sequential_seconds
        )


def admit_plan(
    num_qubits: int,
    arities: Sequence[int],
    subcircuit_lengths: Sequence[int],
    memory_bytes: float,
    cost_model: CostModel | None = None,
    max_batch: int = 64,
    prefix_states: int = 0,
) -> AdmissionDecision:
    """Admit one plan under a memory budget and pick its traversal.

    Memory first: the requested cap is lowered (via
    :func:`max_batch_for_budget`) until the batched pool fits, bottoming
    out at the sequential one-state-per-layer footprint.  Then, when a
    calibrated cost model is available, both traversals are priced at the
    admitted cap with :meth:`CostModel.plan_seconds` — so a plan whose
    admitted cap is too small to amortise the batched-kernel overhead is
    steered back to the sequential traversal by measurement, not by a
    hard-coded threshold.

    ``prefix_states`` is the number of *extra* resident statevectors the
    run keeps outside the traversal pool — replayed/memoised prefix states
    (the engine's bounded prefix cache, or the serving layer's
    cross-request state cache).  Their bytes are charged against the
    budget before the batch cap is computed and reported as part of
    ``peak_bytes``, so a deep-sharded or cache-warmed run cannot be
    admitted past what it will actually hold resident.
    """
    if max_batch < 1:
        raise ValueError("max_batch must be >= 1")
    if prefix_states < 0:
        raise ValueError("prefix_states must be >= 0")
    if len(tuple(arities)) != len(tuple(subcircuit_lengths)):
        raise ValueError("need one arity per subcircuit")
    prefix_bytes = prefix_states * statevector_bytes(num_qubits)
    pool_budget = memory_bytes - prefix_bytes
    requested = min(max_batch, max(int(a) for a in arities))
    peak = batched_tree_simulation_bytes(num_qubits, arities, requested)
    if peak <= pool_budget:
        cap = requested
        reason = "requested batch cap fits the budget"
    else:
        cap = max_batch_for_budget(num_qubits, arities, pool_budget)
        peak = batched_tree_simulation_bytes(num_qubits, arities, cap)
        reason = (
            "batch cap lowered to fit the budget"
            if peak <= pool_budget
            else "even the sequential pool exceeds the budget"
        )
    peak += prefix_bytes
    fits = peak <= memory_bytes
    use_batched = cap > 1
    batched_seconds = sequential_seconds = None
    if cost_model is not None:
        batched_seconds = cost_model.plan_seconds(
            arities, subcircuit_lengths, batched=True, max_batch=cap
        )
        sequential_seconds = cost_model.plan_seconds(
            arities, subcircuit_lengths, batched=False
        )
        use_batched = cap > 1 and batched_seconds <= sequential_seconds
    return AdmissionDecision(
        fits_memory=fits,
        max_batch=cap,
        peak_bytes=peak,
        use_batched=use_batched,
        reason=reason,
        predicted_batched_seconds=batched_seconds,
        predicted_sequential_seconds=sequential_seconds,
    )


@dataclass(frozen=True)
class MemoryScalingPoint:
    """One row of the Figure-4 memory-scaling curve."""

    num_qubits: int
    statevector_bytes: float
    density_matrix_bytes: float


def memory_scaling_table(min_qubits: int = 10, max_qubits: int = 40
                         ) -> list[MemoryScalingPoint]:
    """The Figure-4 curves: statevector vs density-matrix memory by width."""
    if min_qubits < 1 or max_qubits < min_qubits:
        raise ValueError("invalid qubit range")
    return [
        MemoryScalingPoint(n, statevector_bytes(n), density_matrix_bytes(n))
        for n in range(min_qubits, max_qubits + 1)
    ]
