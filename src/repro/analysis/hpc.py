"""HPC system catalogue and memory-utilisation model (paper Table 1, §3.3)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.memory import statevector_bytes

__all__ = [
    "HPCSystem",
    "FRONTIER",
    "SUMMIT",
    "PERLMUTTER",
    "HPC_SYSTEMS",
    "memory_utilization",
    "tqsim_memory_utilization",
]


@dataclass(frozen=True)
class HPCSystem:
    """One node of an HPC system as described in Table 1."""

    name: str
    num_gpus: int
    gpu_memory_bytes: float
    cpu_memory_bytes: float
    usable_gpus: int
    usable_fraction_per_gpu: float

    @property
    def total_gpu_memory_bytes(self) -> float:
        """Raw GPU memory of the node."""
        return self.num_gpus * self.gpu_memory_bytes

    @property
    def usable_gpu_memory_bytes(self) -> float:
        """GPU memory actually usable for statevectors (metadata excluded)."""
        return (
            self.usable_gpus * self.gpu_memory_bytes * self.usable_fraction_per_gpu
        )

    @property
    def total_node_memory_bytes(self) -> float:
        """GPU plus CPU memory of the node."""
        return self.total_gpu_memory_bytes + self.cpu_memory_bytes

    def max_statevector_qubits(self) -> int:
        """Largest width fitting in the usable GPU memory."""
        qubits = 0
        while statevector_bytes(qubits + 1) <= self.usable_gpu_memory_bytes:
            qubits += 1
        return qubits


# Table 1.  Frontier: 4x MI250X with 128 GB each but only 64 GB usable;
# Summit: 6x 16 GB V100 of which 4 are used for balanced performance;
# Perlmutter: 4x 40 GB A100 of which 128 GB total is usable.
FRONTIER = HPCSystem(
    name="Frontier (ORNL)",
    num_gpus=4,
    gpu_memory_bytes=128e9,
    cpu_memory_bytes=512e9,
    usable_gpus=4,
    usable_fraction_per_gpu=0.5,
)
SUMMIT = HPCSystem(
    name="Summit (ORNL)",
    num_gpus=6,
    gpu_memory_bytes=16e9,
    cpu_memory_bytes=512e9,
    usable_gpus=4,
    usable_fraction_per_gpu=0.5,
)
PERLMUTTER = HPCSystem(
    name="Perlmutter (NERSC)",
    num_gpus=4,
    gpu_memory_bytes=40e9,
    cpu_memory_bytes=256e9,
    usable_gpus=4,
    usable_fraction_per_gpu=0.8,
)

#: The three HPC systems of Table 1.
HPC_SYSTEMS = {system.name: system for system in (FRONTIER, SUMMIT, PERLMUTTER)}


def memory_utilization(system: HPCSystem) -> float:
    """Fraction of a node's total memory the *baseline* simulation can use.

    The baseline keeps only the working statevector in (usable) GPU memory,
    so the utilised fraction is the usable GPU memory over the node's total
    memory — the 25% / 5.3% / 30.8% figures quoted in Section 3.3.
    """
    return system.usable_gpu_memory_bytes / system.total_node_memory_bytes


def tqsim_memory_utilization(system: HPCSystem, num_qubits: int,
                             num_subcircuits: int) -> float:
    """Fraction of the node's memory used once TQSim stores its states.

    TQSim parks one intermediate state per non-leaf layer in the otherwise
    idle CPU memory, on top of the baseline's working state in GPU memory.
    """
    if num_subcircuits < 1:
        raise ValueError("num_subcircuits must be >= 1")
    working = min(statevector_bytes(num_qubits), system.usable_gpu_memory_bytes)
    stored = (num_subcircuits - 1) * statevector_bytes(num_qubits)
    stored = min(stored, system.cpu_memory_bytes)
    return (working + stored) / system.total_node_memory_bytes
