"""Model-vs-measured drift: the CostModel's calibration feedback loop.

The calibrated :class:`~repro.core.costmodel.CostModel` predicts a plan's
traversal wall time (:meth:`~repro.core.costmodel.CostModel.plan_seconds`)
and those predictions steer the DCP plan search, the shard balancer and
admission control — but until now nothing ever checked them against what
the engine actually did.  Tracing closes the loop: every ``engine.run``
span carries the plan shape (arities, subcircuit lengths, backend, width,
traversal mode, chunk cap) as attributes, so a traced run can be grouped
by plan and compared against the model's prediction for exactly that
shape.

``drift_ratio`` > 1 means the run was slower than predicted (the model
under-prices this substrate), < 1 faster.  Persistent drift on one
backend/width is the signal to re-run ``python -m repro calibrate``.

Only *full-tree* runs are compared: a shard's ``engine.run`` covers a
subtree slice plus prefix replay, which ``plan_seconds`` does not model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.obs.export import TraceSource, _spans_of
from repro.obs.tracer import SpanRecord

__all__ = ["DriftRow", "drift_report", "render_drift"]


@dataclass(frozen=True)
class DriftRow:
    """Measured-vs-predicted traversal time of one plan shape."""

    tree: str
    backend: str
    num_qubits: int
    batched: bool
    runs: int
    measured_seconds: float
    predicted_seconds: float

    @property
    def drift_ratio(self) -> float:
        """measured / predicted; ``inf`` when the prediction is zero."""
        if self.predicted_seconds <= 0:
            return math.inf
        return self.measured_seconds / self.predicted_seconds


def _run_spans(source: TraceSource) -> list[SpanRecord]:
    required = ("tree", "backend", "qubits", "arities", "lengths", "batched")
    spans = []
    for span in _spans_of(source):
        if span.name != "engine.run":
            continue
        attrs = span.attributes
        if not attrs.get("full_tree"):
            continue
        if any(key not in attrs for key in required):
            continue
        spans.append(span)
    return spans


def drift_report(
    source: TraceSource,
    cost_model_for: Callable[[str, int], object] | None = None,
) -> list[DriftRow]:
    """Group ``engine.run`` spans by plan shape and price each group.

    ``cost_model_for(backend, num_qubits)`` supplies the model; the default
    is :func:`~repro.core.costmodel.get_cost_model`, which calibrates on
    first use per ``(backend, width)`` and caches.  Rows are sorted by
    total measured time, largest first.
    """
    if cost_model_for is None:
        from repro.core.costmodel import get_cost_model

        cost_model_for = get_cost_model

    grouped: dict[tuple, list[SpanRecord]] = {}
    for span in _run_spans(source):
        attrs = span.attributes
        key = (
            str(attrs["tree"]),
            str(attrs["backend"]),
            int(attrs["qubits"]),
            bool(attrs["batched"]),
            int(attrs.get("chunk_cap", 0)),
        )
        grouped.setdefault(key, []).append(span)

    rows: list[DriftRow] = []
    for (tree, backend, qubits, batched, chunk_cap), spans in grouped.items():
        model = cost_model_for(backend, qubits)
        arities: Sequence[int] = spans[0].attributes["arities"]
        lengths: Sequence[int] = spans[0].attributes["lengths"]
        predicted_one = model.plan_seconds(  # type: ignore[attr-defined]
            arities,
            lengths,
            batched=batched,
            max_batch=chunk_cap if chunk_cap >= 1 else 64,
        )
        rows.append(
            DriftRow(
                tree=tree,
                backend=backend,
                num_qubits=qubits,
                batched=batched,
                runs=len(spans),
                measured_seconds=sum(span.duration for span in spans),
                predicted_seconds=predicted_one * len(spans),
            )
        )
    rows.sort(key=lambda row: (-row.measured_seconds, row.tree, row.backend))
    return rows


def render_drift(rows: Sequence[DriftRow]) -> str:
    """Plain-text drift table (the ``trace --format summary`` tail)."""
    if not rows:
        return "no full-tree engine.run spans recorded; drift unavailable"
    header = (
        "tree", "backend", "qubits", "mode", "runs",
        "measured s", "predicted s", "drift x",
    )
    table = [header]
    for row in rows:
        table.append(
            (
                row.tree,
                row.backend,
                str(row.num_qubits),
                "batched" if row.batched else "sequential",
                str(row.runs),
                f"{row.measured_seconds:.4f}",
                f"{row.predicted_seconds:.4f}",
                f"{row.drift_ratio:.2f}",
            )
        )
    widths = [max(len(line[col]) for line in table) for col in range(len(header))]
    rendered = []
    for line_index, line in enumerate(table):
        cells = [
            line[0].ljust(widths[0]),
            *(line[col].rjust(widths[col]) for col in range(1, len(header))),
        ]
        rendered.append("  ".join(cells).rstrip())
        if line_index == 0:
            rendered.append("  ".join("-" * width for width in widths))
    return "\n".join(rendered)
