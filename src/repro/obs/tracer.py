"""Determinism-safe tracing and metrics primitives.

Design constraints, in order:

1. **Inert by construction.** Tracing must never change simulation
   results.  Spans record clock readings (via :mod:`repro.obs.clock`) and
   plain-data attributes; nothing here touches RNG state, counts, or
   control flow in the instrumented code.  The five-way bitwise-identity
   test in ``tests/test_obs.py`` checks this end to end.
2. **Near-zero cost when disabled.** The default tracer is a
   :class:`NullTracer` whose ``span()`` returns a shared no-op context
   manager.  Instrumented hot loops guard attribute construction behind
   a single ``tracer.enabled`` lookup, so a disabled tracer costs one
   attribute read (plus, where a span is unconditionally opened, two
   no-op method calls).
3. **Picklable across the pool boundary.** A worker process builds its
   own :class:`Tracer`, and :meth:`Tracer.buffer` snapshots it into a
   :class:`SpanBuffer` — plain dataclasses of plain data — that ships
   back with the shard result.  The dispatcher :meth:`Tracer.absorb`\\ s
   worker buffers into one cross-process timeline, rebasing timestamps
   onto the parent's origin (``perf_counter`` shares one clock domain
   across processes on every platform we run on) and tagging every span
   with ``(shard, attempt)``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Union

from repro.obs import clock

__all__ = [
    "MetricSet",
    "NULL_SPAN",
    "NullTracer",
    "SpanBuffer",
    "SpanRecord",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]


@dataclass
class SpanRecord:
    """One completed span: plain data, picklable, JSON-friendly.

    ``start`` is seconds since the owning buffer's ``origin``; ``index``
    orders spans by *entry* (spans are appended on exit, so the list
    itself is exit-ordered).  ``parent`` is the index of the enclosing
    span in the same buffer, or ``-1`` at top level.  ``track`` is empty
    for spans recorded by the buffer's own tracer and set to the source
    track label for spans absorbed from another process.
    """

    name: str
    start: float
    duration: float
    depth: int
    index: int
    parent: int
    attributes: dict[str, Any] = field(default_factory=dict)
    track: str = ""


@dataclass
class SpanBuffer:
    """A picklable snapshot of a tracer: spans plus counters/gauges."""

    track: str
    origin: float
    pid: int
    spans: list[SpanRecord] = field(default_factory=list)
    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)


class MetricSet:
    """Monotonic counters and last-write-wins gauges."""

    __slots__ = ("counters", "gauges")

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}

    def count(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def merge(self, counters: dict[str, float], gauges: dict[str, float]) -> None:
        for name, value in counters.items():
            self.count(name, value)
        self.gauges.update(gauges)


class _Span:
    """Live span handle; records itself on the owning tracer at exit."""

    __slots__ = (
        "_attributes",
        "_depth",
        "_index",
        "_name",
        "_parent",
        "_start",
        "_tracer",
    )

    def __init__(self, tracer: "Tracer", name: str, attributes: dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._attributes = attributes

    def set(self, **attributes: Any) -> None:
        """Attach (or overwrite) attributes while the span is open."""
        self._attributes.update(attributes)

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        self._index = tracer._sequence
        tracer._sequence += 1
        self._depth = len(tracer._stack)
        self._parent = tracer._stack[-1]._index if tracer._stack else -1
        tracer._stack.append(self)
        self._start = clock.perf_seconds()
        return self

    def __exit__(self, *exc: object) -> None:
        end = clock.perf_seconds()
        tracer = self._tracer
        tracer._stack.pop()
        tracer._spans.append(
            SpanRecord(
                name=self._name,
                start=self._start - tracer._origin,
                duration=end - self._start,
                depth=self._depth,
                index=self._index,
                parent=self._parent,
                attributes=self._attributes,
            )
        )


class _NullSpan:
    """Shared no-op span: the entire cost of tracing when disabled."""

    __slots__ = ()

    def set(self, **attributes: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Records nested spans with monotonic durations plus counters/gauges.

    ``kernel_interval`` is the kernel-level sampling knob: backends'
    per-gate spans go through :meth:`kernel_span`, which records every
    ``kernel_interval``-th call (0 — the default — records none, keeping
    per-gate overhead to a counter increment even when tracing is on).
    """

    enabled = True

    def __init__(self, track: str = "main", kernel_interval: int = 0) -> None:
        self.track = track
        self.kernel_interval = int(kernel_interval)
        self.metrics = MetricSet()
        self._origin = clock.perf_seconds()
        self._pid = os.getpid()
        self._spans: list[SpanRecord] = []
        self._stack: list[_Span] = []
        self._sequence = 0
        self._kernel_calls = 0

    # -- recording ------------------------------------------------------
    def span(self, name: str, **attributes: Any) -> _Span:
        return _Span(self, name, attributes)

    def kernel_span(self, name: str, **attributes: Any) -> Union[_Span, _NullSpan]:
        interval = self.kernel_interval
        if interval <= 0:
            return NULL_SPAN
        self._kernel_calls += 1
        if (self._kernel_calls - 1) % interval:
            return NULL_SPAN
        return _Span(self, name, attributes)

    def count(self, name: str, value: float = 1) -> None:
        self.metrics.count(name, value)

    def gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name, value)

    # -- snapshot / merge ----------------------------------------------
    @property
    def spans(self) -> list[SpanRecord]:
        """Completed spans, in exit order."""
        return self._spans

    def buffer(self) -> SpanBuffer:
        return SpanBuffer(
            track=self.track,
            origin=self._origin,
            pid=self._pid,
            spans=list(self._spans),
            counters=dict(self.metrics.counters),
            gauges=dict(self.metrics.gauges),
        )

    def absorb(
        self,
        buffer: SpanBuffer,
        track: str | None = None,
        **tags: Any,
    ) -> None:
        """Merge a (typically worker-produced) buffer into this tracer.

        Foreign spans are re-indexed after this tracer's own sequence,
        rebased onto this tracer's origin (``perf_counter`` is one clock
        domain across processes), tagged with ``tags`` (conventionally
        ``shard=…, attempt=…``) and labelled with the source track so
        exporters can lay them out as separate timeline tracks.
        """
        label = track if track is not None else buffer.track
        base = self._sequence
        offset = buffer.origin - self._origin
        width = 0
        for record in buffer.spans:
            attributes = dict(record.attributes)
            attributes.update(tags)
            self._spans.append(
                SpanRecord(
                    name=record.name,
                    start=record.start + offset,
                    duration=record.duration,
                    depth=record.depth,
                    index=base + record.index,
                    parent=record.parent if record.parent < 0 else base + record.parent,
                    attributes=attributes,
                    track=record.track or label,
                )
            )
            if record.index >= width:
                width = record.index + 1
        self._sequence = base + width
        self.metrics.merge(buffer.counters, buffer.gauges)


class NullTracer:
    """Disabled tracer: every operation is a no-op.

    The module default — instrumented code checks ``tracer.enabled``
    (one attribute lookup) before doing any per-span work.
    """

    enabled = False
    kernel_interval = 0
    track = "null"

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        return NULL_SPAN

    def kernel_span(self, name: str, **attributes: Any) -> _NullSpan:
        return NULL_SPAN

    def count(self, name: str, value: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    @property
    def spans(self) -> list[SpanRecord]:
        return []

    def buffer(self) -> SpanBuffer:
        return SpanBuffer(track=self.track, origin=0.0, pid=os.getpid())

    def absorb(self, buffer: SpanBuffer, track: str | None = None, **tags: Any) -> None:
        pass


NULL_TRACER = NullTracer()

AnyTracer = Union[Tracer, NullTracer]

_default_tracer: AnyTracer = NULL_TRACER


def get_tracer() -> AnyTracer:
    """The process-wide default tracer (a ``NullTracer`` unless set)."""
    return _default_tracer


def set_tracer(tracer: AnyTracer | None) -> AnyTracer:
    """Install ``tracer`` as the default; ``None`` resets. Returns the old one."""
    global _default_tracer
    previous = _default_tracer
    _default_tracer = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def use_tracer(tracer: AnyTracer) -> Iterator[AnyTracer]:
    """Scoped default tracer: ``with use_tracer(t): run_experiment()``."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
