"""The single sanctioned clock site in the repro package.

Every wall/monotonic-clock read in ``repro`` goes through this module.
That concentration is what makes tracing *provably* inert: the
``obs-clock`` lint rule forbids ``time.perf_counter`` / ``time.monotonic``
and friends anywhere outside ``repro.obs``, so a reviewer (and CI) can
check by inspection that no clock value ever feeds an RNG draw, a branch
in the traversal, or anything else that could perturb counts.  Clock
values flow one way: out of here, into measurements.

All helpers are thin wrappers over :mod:`time` — same resolution, same
monotonic guarantees — so migrating a call site is a rename, not a
semantic change.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "Stopwatch",
    "monotonic_seconds",
    "perf_ns",
    "perf_seconds",
    "stopwatch",
]


def perf_seconds() -> float:
    """Monotonic high-resolution timestamp in seconds (``perf_counter``)."""
    return time.perf_counter()


def perf_ns() -> int:
    """Monotonic high-resolution timestamp in nanoseconds."""
    return time.perf_counter_ns()


def monotonic_seconds() -> float:
    """Coarse monotonic timestamp in seconds (``time.monotonic``).

    Used by supervision loops (deadlines, backoff accounting) where the
    cheaper clock is adequate and consistency with ``sleep`` matters.
    """
    return time.monotonic()


class Stopwatch:
    """A started timer; ``elapsed`` is seconds since construction/``start``."""

    __slots__ = ("_start", "elapsed")

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._start = time.perf_counter()

    def restart(self) -> None:
        self._start = time.perf_counter()

    def stop(self) -> float:
        self.elapsed = time.perf_counter() - self._start
        return self.elapsed

    def peek(self) -> float:
        """Elapsed seconds so far without stopping."""
        return time.perf_counter() - self._start


@contextmanager
def stopwatch() -> Iterator[Stopwatch]:
    """Context manager timing its body: ``with stopwatch() as sw: ...``.

    After the block exits, ``sw.elapsed`` holds the wall-clock duration in
    seconds (``perf_counter`` based).  This is the one timing helper the
    experiment scripts use, replacing scattered raw ``time.perf_counter()``
    pairs.
    """
    sw = Stopwatch()
    try:
        yield sw
    finally:
        sw.stop()
