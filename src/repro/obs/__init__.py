"""``repro.obs`` — low-overhead, determinism-safe tracing and metrics.

The observability substrate the rest of the stack builds on:

* :mod:`repro.obs.clock` — the *only* module in ``repro`` that reads
  clocks (enforced by the ``obs-clock`` lint rule), so tracing is
  provably inert with respect to counts and RNG draws.
* :mod:`repro.obs.tracer` — :class:`Tracer` span context-managers with
  structured attributes, :class:`MetricSet` counters/gauges, picklable
  :class:`SpanBuffer` snapshots for the process-pool boundary, and the
  :class:`NullTracer` default that keeps the disabled hot path at one
  attribute lookup.
* :mod:`repro.obs.export` — JSON-lines, per-span-name summary table and
  Chrome trace-event (Perfetto) exporters.
* :mod:`repro.obs.schema` — shared telemetry names plus the
  backward-compatible views of the legacy dispatch metadata keys.
* :mod:`repro.obs.drift` — measured span totals vs
  :meth:`~repro.core.costmodel.CostModel.plan_seconds` predictions, the
  calibration feedback loop.

Typical use::

    from repro.obs import Tracer, use_tracer, chrome_trace

    tracer = Tracer()
    with use_tracer(tracer):          # engines/dispatchers pick it up
        dispatcher.run(circuit, shots)
    json.dump(chrome_trace(tracer), open("trace.json", "w"))
"""

from repro.obs.clock import Stopwatch, stopwatch
from repro.obs.drift import DriftRow, drift_report, render_drift
from repro.obs.export import (
    SummaryRow,
    chrome_trace,
    render_summary,
    summarize,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.schema import (
    DISPATCH_PREFIX,
    REPLAYED_PREFIX_GATES,
    RESILIENCE_PREFIX,
    replayed_prefix_gates_view,
    resilience_view,
)
from repro.obs.tracer import (
    NULL_SPAN,
    NULL_TRACER,
    AnyTracer,
    MetricSet,
    NullTracer,
    SpanBuffer,
    SpanRecord,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "AnyTracer",
    "DISPATCH_PREFIX",
    "DriftRow",
    "MetricSet",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullTracer",
    "REPLAYED_PREFIX_GATES",
    "RESILIENCE_PREFIX",
    "SpanBuffer",
    "SpanRecord",
    "Stopwatch",
    "SummaryRow",
    "Tracer",
    "chrome_trace",
    "drift_report",
    "get_tracer",
    "render_drift",
    "render_summary",
    "replayed_prefix_gates_view",
    "resilience_view",
    "set_tracer",
    "stopwatch",
    "summarize",
    "use_tracer",
    "write_chrome_trace",
    "write_jsonl",
]
