"""Shared telemetry schema: obs counter names plus legacy metadata views.

Dispatch telemetry used to be ad-hoc nested dicts assembled inline
(``metadata["dispatch"]["resilience"]``, ``replayed_prefix_gates``).
The counters now live in an obs :class:`~repro.obs.tracer.MetricSet`
under the dotted names below, and the old metadata keys are rebuilt from
those counters by the view helpers — so downstream readers (experiments,
tests, the fig10 fault-injection sweeps) keep working unchanged while
traced runs see the same numbers as ``tracer.metrics`` counters.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.obs.tracer import MetricSet

__all__ = [
    "DISPATCH_PREFIX",
    "LATENCY_BUCKET_BOUNDS_MS",
    "REPLAYED_PREFIX_GATES",
    "RESILIENCE_PREFIX",
    "SERVE_CACHE_PREFIX",
    "SERVE_LATENCY_PREFIX",
    "SERVE_PREFIX",
    "latency_percentiles_ms",
    "record_latency",
    "replayed_prefix_gates_view",
    "resilience_view",
    "serve_cache_view",
]

#: Every dispatch-layer counter lives under this namespace.
DISPATCH_PREFIX = "dispatch."
#: Counter mirroring ``metadata["dispatch"]["replayed_prefix_gates"]``.
REPLAYED_PREFIX_GATES = DISPATCH_PREFIX + "replayed_prefix_gates"
#: Namespace for the resilient supervision loop's scalar telemetry.
RESILIENCE_PREFIX = DISPATCH_PREFIX + "resilience."

#: Scalar counts kept as counters (``RESILIENCE_PREFIX + name``).
RESILIENCE_COUNTERS = (
    "timeouts",
    "retries",
    "pool_rebuilds",
    "speculative.launched",
    "speculative.won",
    "speculative.lost",
    "backoff_seconds_total",
)
#: 0/1 flag kept as a gauge.
RESILIENCE_DEGRADED = RESILIENCE_PREFIX + "degraded"


#: Every serving-layer counter lives under this namespace.
SERVE_PREFIX = "serve."
#: Per-cache hit/miss/eviction counters:
#: ``serve.cache.{plan,transpile,prefix}.{hits,misses,evictions,...}``.
SERVE_CACHE_PREFIX = SERVE_PREFIX + "cache."
#: Request-latency histogram counters: ``serve.latency.le_<bound>ms`` is the
#: number of requests completed in at most ``<bound>`` milliseconds.
SERVE_LATENCY_PREFIX = SERVE_PREFIX + "latency.le_"

#: Geometric upper bounds (milliseconds) of the request-latency histogram.
#: Counter-backed percentiles (p50/p99) are read off these cumulative
#: buckets — no per-request timestamps are retained, so latency telemetry
#: stays O(1) per request and aggregates by plain counter addition.
LATENCY_BUCKET_BOUNDS_MS: tuple[float, ...] = tuple(
    0.25 * 2.0**i for i in range(22)  # 0.25 ms .. ~8.7 min
)
_LATENCY_OVERFLOW = "inf"


def _bucket_name(bound: float) -> str:
    text = f"{bound:g}"
    return SERVE_LATENCY_PREFIX + f"{text}ms"


def record_latency(metrics: MetricSet, seconds: float) -> None:
    """Count one request latency into its cumulative histogram buckets.

    Cumulative (Prometheus-style) buckets: the observation increments every
    bucket whose bound is >= the latency, plus the ``inf`` overflow bucket,
    so percentile reads never have to re-sum a prefix.
    """
    millis = seconds * 1e3
    for bound in LATENCY_BUCKET_BOUNDS_MS:
        if millis <= bound:
            metrics.count(_bucket_name(bound))
    metrics.count(SERVE_LATENCY_PREFIX + _LATENCY_OVERFLOW)


def latency_percentiles_ms(
    metrics: MetricSet, percentiles: Sequence[float] = (50.0, 99.0)
) -> dict[float, float]:
    """Percentile latencies (ms) read off the cumulative histogram counters.

    Each percentile maps to the smallest bucket bound whose cumulative count
    covers it — an upper bound with one-bucket resolution, the standard
    histogram-percentile estimate.  Returns ``inf`` for percentiles beyond
    the largest bound and an empty estimate of 0.0 when nothing was
    recorded.
    """
    total = _counter(metrics, SERVE_LATENCY_PREFIX + _LATENCY_OVERFLOW)
    out: dict[float, float] = {}
    for percentile in percentiles:
        if not 0 < percentile <= 100:
            raise ValueError("percentiles must be in (0, 100]")
        if total == 0:
            out[percentile] = 0.0
            continue
        needed = percentile / 100.0 * total
        for bound in LATENCY_BUCKET_BOUNDS_MS:
            if _counter(metrics, _bucket_name(bound)) >= needed:
                out[percentile] = bound
                break
        else:
            out[percentile] = float("inf")
    return out


def serve_cache_view(metrics: MetricSet) -> dict[str, dict[str, int]]:
    """Per-cache stat dicts rebuilt from the ``serve.cache.*`` counters."""
    view: dict[str, dict[str, int]] = {}
    for name, value in sorted(metrics.counters.items()):
        if not name.startswith(SERVE_CACHE_PREFIX):
            continue
        cache, _, stat = name[len(SERVE_CACHE_PREFIX):].partition(".")
        if stat:
            view.setdefault(cache, {})[stat] = int(value)
    return view


def _counter(metrics: MetricSet, name: str) -> float:
    return metrics.counters.get(name, 0)


def replayed_prefix_gates_view(metrics: MetricSet) -> int:
    """Legacy ``metadata["dispatch"]["replayed_prefix_gates"]`` value."""
    return int(_counter(metrics, REPLAYED_PREFIX_GATES))


def resilience_view(
    metrics: MetricSet,
    *,
    attempts: Sequence[int],
    failures: Sequence[dict[str, Any]],
    degraded_shards: Sequence[int],
    timeout_seconds: Sequence[float],
) -> dict[str, Any]:
    """Rebuild the legacy ``metadata["dispatch"]["resilience"]`` dict.

    Scalars come from obs counters/gauges; the structured per-shard
    records (attempt counts, failure log, degraded shard list, planned
    timeouts) are passed through as-is — they are event logs, not
    counters, and stay outside the metric namespace.
    """

    def count(name: str) -> int:
        return int(_counter(metrics, RESILIENCE_PREFIX + name))

    return {
        "attempts": list(attempts),
        "timeouts": count("timeouts"),
        "retries": count("retries"),
        "failures": [dict(record) for record in failures],
        "pool_rebuilds": count("pool_rebuilds"),
        "speculative": {
            "launched": count("speculative.launched"),
            "won": count("speculative.won"),
            "lost": count("speculative.lost"),
        },
        "degraded": bool(metrics.gauges.get(RESILIENCE_DEGRADED, 0)),
        "degraded_shards": list(degraded_shards),
        "backoff_seconds_total": float(
            _counter(metrics, RESILIENCE_PREFIX + "backoff_seconds_total")
        ),
        "timeout_seconds": [float(value) for value in timeout_seconds],
    }
