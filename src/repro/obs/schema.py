"""Shared telemetry schema: obs counter names plus legacy metadata views.

Dispatch telemetry used to be ad-hoc nested dicts assembled inline
(``metadata["dispatch"]["resilience"]``, ``replayed_prefix_gates``).
The counters now live in an obs :class:`~repro.obs.tracer.MetricSet`
under the dotted names below, and the old metadata keys are rebuilt from
those counters by the view helpers — so downstream readers (experiments,
tests, the fig10 fault-injection sweeps) keep working unchanged while
traced runs see the same numbers as ``tracer.metrics`` counters.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.obs.tracer import MetricSet

__all__ = [
    "DISPATCH_PREFIX",
    "REPLAYED_PREFIX_GATES",
    "RESILIENCE_PREFIX",
    "replayed_prefix_gates_view",
    "resilience_view",
]

#: Every dispatch-layer counter lives under this namespace.
DISPATCH_PREFIX = "dispatch."
#: Counter mirroring ``metadata["dispatch"]["replayed_prefix_gates"]``.
REPLAYED_PREFIX_GATES = DISPATCH_PREFIX + "replayed_prefix_gates"
#: Namespace for the resilient supervision loop's scalar telemetry.
RESILIENCE_PREFIX = DISPATCH_PREFIX + "resilience."

#: Scalar counts kept as counters (``RESILIENCE_PREFIX + name``).
RESILIENCE_COUNTERS = (
    "timeouts",
    "retries",
    "pool_rebuilds",
    "speculative.launched",
    "speculative.won",
    "speculative.lost",
    "backoff_seconds_total",
)
#: 0/1 flag kept as a gauge.
RESILIENCE_DEGRADED = RESILIENCE_PREFIX + "degraded"


def _counter(metrics: MetricSet, name: str) -> float:
    return metrics.counters.get(name, 0)


def replayed_prefix_gates_view(metrics: MetricSet) -> int:
    """Legacy ``metadata["dispatch"]["replayed_prefix_gates"]`` value."""
    return int(_counter(metrics, REPLAYED_PREFIX_GATES))


def resilience_view(
    metrics: MetricSet,
    *,
    attempts: Sequence[int],
    failures: Sequence[dict[str, Any]],
    degraded_shards: Sequence[int],
    timeout_seconds: Sequence[float],
) -> dict[str, Any]:
    """Rebuild the legacy ``metadata["dispatch"]["resilience"]`` dict.

    Scalars come from obs counters/gauges; the structured per-shard
    records (attempt counts, failure log, degraded shard list, planned
    timeouts) are passed through as-is — they are event logs, not
    counters, and stay outside the metric namespace.
    """

    def count(name: str) -> int:
        return int(_counter(metrics, RESILIENCE_PREFIX + name))

    return {
        "attempts": list(attempts),
        "timeouts": count("timeouts"),
        "retries": count("retries"),
        "failures": [dict(record) for record in failures],
        "pool_rebuilds": count("pool_rebuilds"),
        "speculative": {
            "launched": count("speculative.launched"),
            "won": count("speculative.won"),
            "lost": count("speculative.lost"),
        },
        "degraded": bool(metrics.gauges.get(RESILIENCE_DEGRADED, 0)),
        "degraded_shards": list(degraded_shards),
        "backoff_seconds_total": float(
            _counter(metrics, RESILIENCE_PREFIX + "backoff_seconds_total")
        ),
        "timeout_seconds": [float(value) for value in timeout_seconds],
    }
