"""Exporters for recorded spans: JSON-lines, summary table, Chrome trace.

All three accept either a live :class:`~repro.obs.tracer.Tracer` or a
picklable :class:`~repro.obs.tracer.SpanBuffer` snapshot.  The Chrome
exporter emits the legacy trace-event JSON (``{"traceEvents": [...]}``)
that both ``chrome://tracing`` and Perfetto load: each track (the main
process plus every absorbed worker shard/attempt) becomes its own
synthetic ``pid`` with a ``process_name`` metadata record, and spans
become ``"X"`` complete events with microsecond timestamps.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Iterator, Sequence, TextIO, Union

from repro.obs.tracer import NullTracer, SpanBuffer, SpanRecord, Tracer

__all__ = [
    "SummaryRow",
    "chrome_trace",
    "render_summary",
    "summarize",
    "write_chrome_trace",
    "write_jsonl",
]

TraceSource = Union[Tracer, NullTracer, SpanBuffer]


def _spans_of(source: TraceSource) -> list[SpanRecord]:
    return list(source.spans)


def _counters_of(source: TraceSource) -> dict[str, float]:
    if isinstance(source, SpanBuffer):
        return dict(source.counters)
    if isinstance(source, Tracer):
        return dict(source.metrics.counters)
    return {}


def _gauges_of(source: TraceSource) -> dict[str, float]:
    if isinstance(source, SpanBuffer):
        return dict(source.gauges)
    if isinstance(source, Tracer):
        return dict(source.metrics.gauges)
    return {}


def _main_track(source: TraceSource) -> str:
    return source.track if source.track else "main"


def _json_safe(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _json_safe(item) for key, item in value.items()}
    return str(value)


# ----------------------------------------------------------------------
# JSON-lines
# ----------------------------------------------------------------------
def _jsonl_records(source: TraceSource) -> Iterator[dict[str, Any]]:
    main = _main_track(source)
    for span in sorted(_spans_of(source), key=lambda s: (s.start, s.index)):
        yield {
            "type": "span",
            "name": span.name,
            "track": span.track or main,
            "start": span.start,
            "duration": span.duration,
            "depth": span.depth,
            "index": span.index,
            "parent": span.parent,
            "attributes": _json_safe(span.attributes),
        }
    for name, value in sorted(_counters_of(source).items()):
        yield {"type": "counter", "name": name, "value": value}
    for name, value in sorted(_gauges_of(source).items()):
        yield {"type": "gauge", "name": name, "value": value}


def write_jsonl(source: TraceSource, stream: TextIO) -> int:
    """Write one JSON object per line; returns the number of lines."""
    lines = 0
    for record in _jsonl_records(source):
        stream.write(json.dumps(record, sort_keys=True))
        stream.write("\n")
        lines += 1
    return lines


# ----------------------------------------------------------------------
# Chrome trace-event format
# ----------------------------------------------------------------------
def chrome_trace(source: TraceSource) -> dict[str, Any]:
    """Build a Chrome/Perfetto trace-event document from recorded spans."""
    main = _main_track(source)
    spans = sorted(_spans_of(source), key=lambda s: (s.start, s.index))
    track_pids: dict[str, int] = {}
    events: list[dict[str, Any]] = []

    def pid_for(track: str) -> int:
        pid = track_pids.get(track)
        if pid is None:
            pid = len(track_pids) + 1
            track_pids[track] = pid
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": track},
                }
            )
        return pid

    pid_for(main)
    for span in spans:
        events.append(
            {
                "ph": "X",
                "cat": "repro",
                "name": span.name,
                "ts": round(span.start * 1e6, 3),
                "dur": round(span.duration * 1e6, 3),
                "pid": pid_for(span.track or main),
                "tid": 0,
                "args": _json_safe(span.attributes),
            }
        )
    counters = _counters_of(source)
    gauges = _gauges_of(source)
    metadata: dict[str, Any] = {"tracks": dict(track_pids)}
    if counters:
        metadata["counters"] = _json_safe(counters)
    if gauges:
        metadata["gauges"] = _json_safe(gauges)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": metadata,
    }


def write_chrome_trace(source: TraceSource, stream: TextIO) -> int:
    """Serialize :func:`chrome_trace` to ``stream``; returns the event count."""
    document = chrome_trace(source)
    json.dump(document, stream, sort_keys=True)
    stream.write("\n")
    return len(document["traceEvents"])


# ----------------------------------------------------------------------
# Per-span-name summary
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SummaryRow:
    name: str
    calls: int
    total_seconds: float
    mean_seconds: float
    max_seconds: float
    self_seconds: float


def summarize(source: TraceSource) -> list[SummaryRow]:
    """Aggregate spans by name, most total time first.

    ``self_seconds`` subtracts the time spent in *recorded* child spans,
    so a parent whose children are also traced doesn't double-count.
    """
    spans = _spans_of(source)
    child_time: dict[tuple[str, int], float] = {}
    by_index: dict[tuple[str, int], SpanRecord] = {
        (span.track, span.index): span for span in spans
    }
    for span in spans:
        if span.parent >= 0 and (span.track, span.parent) in by_index:
            key = (span.track, span.parent)
            child_time[key] = child_time.get(key, 0.0) + span.duration
    totals: dict[str, list[float]] = {}
    selfs: dict[str, float] = {}
    for span in spans:
        totals.setdefault(span.name, []).append(span.duration)
        own = span.duration - child_time.get((span.track, span.index), 0.0)
        selfs[span.name] = selfs.get(span.name, 0.0) + max(own, 0.0)
    rows = [
        SummaryRow(
            name=name,
            calls=len(durations),
            total_seconds=sum(durations),
            mean_seconds=sum(durations) / len(durations),
            max_seconds=max(durations),
            self_seconds=selfs[name],
        )
        for name, durations in totals.items()
    ]
    rows.sort(key=lambda row: (-row.total_seconds, row.name))
    return rows


def render_summary(rows: Sequence[SummaryRow]) -> str:
    """Plain-text table of :func:`summarize` rows."""
    header = ("span", "calls", "total s", "self s", "mean ms", "max ms")
    table = [header]
    for row in rows:
        table.append(
            (
                row.name,
                str(row.calls),
                f"{row.total_seconds:.4f}",
                f"{row.self_seconds:.4f}",
                f"{row.mean_seconds * 1e3:.3f}",
                f"{row.max_seconds * 1e3:.3f}",
            )
        )
    widths = [max(len(line[col]) for line in table) for col in range(len(header))]
    rendered = []
    for line_index, line in enumerate(table):
        cells = [
            line[0].ljust(widths[0]),
            *(line[col].rjust(widths[col]) for col in range(1, len(header))),
        ]
        rendered.append("  ".join(cells).rstrip())
        if line_index == 0:
            rendered.append("  ".join("-" * width for width in widths))
    return "\n".join(rendered)
