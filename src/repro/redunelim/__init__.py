"""Inter-shot redundancy-elimination comparator (Li et al.)."""

from repro.redunelim.simulator import (
    RedundancyAnalysis,
    analyze_redundancy_elimination,
    tqsim_normalized_computation,
)

__all__ = [
    "RedundancyAnalysis",
    "analyze_redundancy_elimination",
    "tqsim_normalized_computation",
]
