"""Inter-shot redundancy elimination (Li et al., DAC 2020) — Figure 19.

The comparator works on the *noise realizations* of a multi-shot simulation:
two shots whose error-operator choices agree on a prefix of the circuit can
share the computation of that prefix.  Organising all sampled realizations in
a prefix tree (trie), the computation actually required is the number of trie
nodes, while the baseline recomputes every gate of every shot.  The paper's
point (and Figure 19) is that the approach collapses for long circuits: the
probability that two shots share a long prefix of identical error choices
vanishes as the gate count grows, whereas TQSim's reuse is structural and
independent of the error draw.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.circuit import Circuit
from repro.core.copycost import DEFAULT_COPY_COST_IN_GATES
from repro.core.partitioners import DynamicCircuitPartitioner
from repro.noise.model import NoiseModel
from repro.noise.trajectory import sample_noise_realization

__all__ = ["RedundancyAnalysis", "analyze_redundancy_elimination", "tqsim_normalized_computation"]


@dataclass(frozen=True)
class RedundancyAnalysis:
    """Result of the redundancy-elimination analysis on one circuit."""

    circuit_name: str
    num_qubits: int
    num_gates: int
    shots: int
    baseline_gate_applications: int
    redun_elim_gate_applications: int

    @property
    def normalized_computation(self) -> float:
        """Computation of redundancy elimination relative to the baseline."""
        return self.redun_elim_gate_applications / self.baseline_gate_applications

    @property
    def eliminated_fraction(self) -> float:
        """Fraction of the baseline's gate applications eliminated."""
        return 1.0 - self.normalized_computation


def analyze_redundancy_elimination(
    circuit: Circuit,
    noise_model: NoiseModel,
    shots: int,
    seed: int | None = None,
) -> RedundancyAnalysis:
    """Count the computation left after inter-shot redundancy elimination.

    Each shot's noise realization (one branch choice per noise event) is
    sampled ahead of time — valid because the paper's comparison uses the
    depolarizing channel, a mixture of unitaries.  Shots are inserted into a
    prefix trie whose nodes each represent one gate application; the trie's
    node count is the computation the redundancy-elimination method performs.
    """
    if shots < 1:
        raise ValueError("shots must be >= 1")
    rng = np.random.default_rng(seed)
    num_gates = circuit.num_gates
    trie_nodes = 0
    # Trie encoded as a set of realized prefixes (hashable tuples).  Every new
    # prefix corresponds to one gate application that cannot be shared.
    seen_prefixes: set[tuple] = set()
    for _ in range(shots):
        realization = sample_noise_realization(circuit, noise_model, rng)
        prefix: list[tuple[int, ...]] = []
        for gate_index in range(num_gates):
            prefix.append(tuple(realization.choices[gate_index]))
            key = tuple(prefix)
            if key not in seen_prefixes:
                seen_prefixes.add(key)
                trie_nodes += 1
    return RedundancyAnalysis(
        circuit_name=circuit.name or "circuit",
        num_qubits=circuit.num_qubits,
        num_gates=num_gates,
        shots=shots,
        baseline_gate_applications=shots * num_gates,
        redun_elim_gate_applications=trie_nodes,
    )


def tqsim_normalized_computation(
    circuit: Circuit,
    noise_model: NoiseModel,
    shots: int,
    copy_cost_in_gates: float = DEFAULT_COPY_COST_IN_GATES,
    margin_of_error: float | None = None,
) -> float:
    """TQSim's computation (incl. copy overhead) relative to the baseline."""
    if margin_of_error is None:
        partitioner = DynamicCircuitPartitioner(copy_cost_in_gates=copy_cost_in_gates)
    else:
        partitioner = DynamicCircuitPartitioner(
            copy_cost_in_gates=copy_cost_in_gates, margin_of_error=margin_of_error
        )
    plan = partitioner.plan(circuit, shots, noise_model)
    tqsim_cost = (
        plan.tree.computation_cost(plan.subcircuit_lengths)
        + plan.tree.state_copies * copy_cost_in_gates
    )
    baseline_cost = shots * circuit.num_gates
    return tqsim_cost / baseline_cost
