"""Command-line entry point: ``python -m repro``.

Five subcommands:

* ``python -m repro list`` — every reproducible paper artefact with its
  claim.
* ``python -m repro run <experiment> [--workers N] [--max-depth D] ...`` —
  run one artefact with a scaled configuration and print a compact summary
  of the result object.  ``--workers`` feeds the multiprocess dispatch legs
  of the experiments that measure real parallel execution (fig8 / fig13);
  ``--max-depth`` lets their shard planner split tree layers below the
  first when the first-layer arity would starve the pool.  ``--copy-cost``
  pins the analytic state-copy cost, while ``--calibrated``
  microbenchmarks the batched backend and uses the measured ratio instead.
  ``--trace [PATH]`` runs the experiment under a tracer (see
  :mod:`repro.obs`) and writes a Chrome trace next to the summary.
* ``python -m repro trace <experiment> [--out PATH]
  [--format chrome|jsonl|summary]`` — run one artefact with tracing on and
  export the recorded spans: Chrome trace-event JSON (Perfetto-loadable),
  JSON-lines, or a per-span-name summary table followed by the
  measured-vs-CostModel drift report.  Tracing is inert, so the traced
  result is bitwise the ``run`` result.
* ``python -m repro calibrate [--backend B] [--qubits N] [--cache PATH]``
  — measure the per-primitive cost model (see
  :mod:`repro.core.costmodel`) and print its table, optionally persisting
  it to a JSON artifact for reuse and CI diffing.
* ``python -m repro lint [paths] [--rules ...] [--format json|text]
  [--fail-on warning|error]`` — run the AST-based contract checker (see
  :mod:`repro.lint`) that enforces the seeding, backend-conformance,
  multiprocessing-safety, API-hygiene and clock-confinement invariants;
  the CI gate.
* ``python -m repro serve [--port P | --replay]`` — the
  simulation-as-a-service front end (see :mod:`repro.serve`): either a
  line-delimited-JSON TCP server, or ``--replay`` to drive the synthetic
  heavy-traffic benchmark against an in-process server and print the
  cold/warm comparison (``--json PATH`` persists the report for CI).
"""

from __future__ import annotations

import argparse
import dataclasses
from typing import Any, Sequence

from repro.core.costmodel import DEFAULT_CALIBRATION_QUBITS, get_cost_model
from repro.experiments.common import DEFAULT_CONFIG
from repro.experiments.registry import EXPERIMENTS, get_experiment

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce TQSim paper artefacts (figures and tables).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list the available experiments")

    run = commands.add_parser("run", help="run one experiment by id")
    _add_experiment_arguments(run)
    run.add_argument("--trace", nargs="?", const="trace.json", default=None,
                     metavar="PATH",
                     help="run under a tracer and write a Chrome trace "
                          "(default PATH: trace.json); tracing is inert, "
                          "the printed result is unchanged")

    trace = commands.add_parser(
        "trace",
        help="run one experiment with tracing on and export the spans",
    )
    _add_experiment_arguments(trace)
    trace.add_argument("--out", default=None, metavar="PATH",
                       help="output file (defaults: trace.json for chrome, "
                            "trace.jsonl for jsonl; summary prints to "
                            "stdout unless --out is given)")
    trace.add_argument("--format", choices=("chrome", "jsonl", "summary"),
                       default="chrome",
                       help="chrome = trace-event JSON (Perfetto-loadable), "
                            "jsonl = one span/metric per line, summary = "
                            "per-span-name totals plus the CostModel drift "
                            "report (default: chrome)")

    calibrate = commands.add_parser(
        "calibrate",
        help="microbenchmark the cost model for one backend and width",
    )
    calibrate.add_argument("--backend", default="batched",
                           help="execution backend to calibrate "
                                "(default: batched)")
    calibrate.add_argument("--qubits", type=int,
                           default=DEFAULT_CALIBRATION_QUBITS,
                           help="circuit width to calibrate at")
    calibrate.add_argument("--cache", default=None,
                           help="JSON artifact to read/write calibrated "
                                "models (created if missing)")
    calibrate.add_argument("--refresh", action="store_true",
                           help="re-measure even when a cached model exists")
    calibrate.add_argument("--repeats", type=int, default=48,
                           help="timed kernel calls per measurement burst")

    lint = commands.add_parser(
        "lint",
        help="run the AST-based contract checker over the source tree",
    )
    # The lint arguments live next to the rules so the checker is usable
    # standalone (tests drive add_lint_arguments/run_lint_cli directly).
    from repro.lint.cli import add_lint_arguments

    add_lint_arguments(lint)

    serve = commands.add_parser(
        "serve",
        help="run the simulation service (TCP) or its replay benchmark",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address for the TCP server")
    serve.add_argument("--port", type=int, default=8753,
                       help="TCP port accepting line-delimited JSON requests")
    serve.add_argument("--workers", type=int, default=1,
                       help="worker processes per request (1 = in-process "
                            "engine; more fans shards out through the pool "
                            "dispatcher)")
    serve.add_argument("--replay", action="store_true",
                       help="instead of listening, run the synthetic "
                            "heavy-traffic replay (cold pass, then the same "
                            "mix warm) and print the comparison")
    serve.add_argument("--requests", type=int, default=24,
                       help="replay request count")
    serve.add_argument("--qubits", type=int, default=6,
                       help="replay circuit width")
    serve.add_argument("--shots", type=int, default=256,
                       help="shots per replay request")
    serve.add_argument("--noise", default=None,
                       help="replay noise model code (default: ideal)")
    serve.add_argument("--json", default=None, metavar="PATH",
                       help="write the replay report as JSON to PATH")
    return parser


def _add_experiment_arguments(parser: argparse.ArgumentParser) -> None:
    """Arguments shared by ``run`` and ``trace`` (one experiment + config)."""
    parser.add_argument("experiment",
                        help="experiment id, e.g. fig11 or table2")
    parser.add_argument("--shots", type=int, default=None,
                        help="outcomes per simulation (default: scaled-down "
                             "harness value)")
    parser.add_argument("--max-qubits", type=int, default=None,
                        help="skip benchmarks wider than this")
    parser.add_argument("--seed", type=int, default=None,
                        help="base RNG seed")
    parser.add_argument("--backend", default=None,
                        help="execution backend name (see repro.backends)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for the measured dispatch legs")
    parser.add_argument("--max-depth", type=int, default=None,
                        help="tree layers the shard planner may split "
                             "(1 = first layer only; deeper feeds more "
                             "workers than the first-layer arity at the cost "
                             "of prefix replays)")
    parser.add_argument("--copy-cost", type=float, default=None,
                        help="state-copy cost in gate executions handed to "
                             "the partitioners (default: harness value)")
    parser.add_argument("--calibrated", action="store_true",
                        help="microbenchmark the batched backend and use the "
                             "measured copy cost instead of the analytic "
                             "value")
    parser.add_argument("--resilient", action="store_true",
                        help="run the measured dispatch legs through the "
                             "fault-tolerant ResilientPoolDispatcher "
                             "(per-shard timeouts, deterministic retries, "
                             "straggler re-shard) instead of the plain pool")


def _describe(value: Any, indent: str = "  ") -> list[str]:
    """Flatten a result object into short human-readable lines.

    Experiment results are plain dataclasses mixing scalars with large
    row lists; scalars are printed verbatim and containers are summarised
    by length so the output stays one screen tall.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        lines = []
        for field in dataclasses.fields(value):
            item = getattr(value, field.name)
            if dataclasses.is_dataclass(item) and not isinstance(item, type):
                lines.append(f"{indent}{field.name}:")
                lines.extend(_describe(item, indent + "  "))
            elif isinstance(item, (list, tuple)):
                lines.append(f"{indent}{field.name}: {len(item)} item(s)")
            elif isinstance(item, dict):
                keys = ", ".join(str(key) for key in list(item)[:6])
                suffix = ", ..." if len(item) > 6 else ""
                lines.append(
                    f"{indent}{field.name}: {len(item)} entry(ies) [{keys}{suffix}]"
                )
            elif isinstance(item, float):
                lines.append(f"{indent}{field.name}: {item:.6g}")
            else:
                lines.append(f"{indent}{field.name}: {item}")
        return lines
    return [f"{indent}{value}"]


def _cmd_list() -> int:
    width = max(len(identifier) for identifier in EXPERIMENTS)
    for identifier in sorted(EXPERIMENTS):
        experiment = EXPERIMENTS[identifier]
        print(f"{identifier.ljust(width)}  {experiment.title}")
        print(f"{' ' * width}  {experiment.paper_claim}")
    return 0


def _experiment_config(args: argparse.Namespace):
    """Build the :class:`ExperimentConfig` the shared arguments describe.

    Returns ``None`` after printing a message when an argument is invalid
    (the caller exits 2).
    """
    overrides: dict[str, Any] = {}
    if args.shots is not None:
        # Rejected here, not deep inside a worker: zero shards cannot be
        # planned, dispatched or merged (Dispatcher.run raises the same
        # constraint as a ValueError for library callers).
        if args.shots < 1:
            print("--shots must be >= 1")
            return None
        overrides["shots"] = args.shots
    if args.max_qubits is not None:
        overrides["max_qubits"] = args.max_qubits
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.backend is not None:
        overrides["backend"] = args.backend
    extra = dict(DEFAULT_CONFIG.extra)
    if args.workers is not None:
        if args.workers < 1:
            print("--workers must be >= 1")
            return None
        extra["workers"] = args.workers
    if args.max_depth is not None:
        if args.max_depth < 1:
            print("--max-depth must be >= 1")
            return None
        extra["max_depth"] = args.max_depth
    if args.resilient:
        extra["resilient"] = True
    if args.copy_cost is not None and args.calibrated:
        print("--copy-cost and --calibrated are mutually exclusive")
        return None
    if args.copy_cost is not None:
        if args.copy_cost < 0:
            print("--copy-cost must be non-negative")
            return None
        overrides["copy_cost_in_gates"] = args.copy_cost
    if args.calibrated:
        width = overrides.get("max_qubits", DEFAULT_CONFIG.max_qubits)
        model = get_cost_model("batched", width)
        overrides["copy_cost_in_gates"] = model.copy_cost_in_gates
        extra["calibrated"] = True
        print(
            f"calibrated copy cost: {model.copy_cost_in_gates:.4g} gates "
            f"(batched backend, {width} qubits)"
        )
    if extra != DEFAULT_CONFIG.extra:
        overrides["extra"] = extra
    return DEFAULT_CONFIG.scaled(**overrides)


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        experiment = get_experiment(args.experiment)
    except KeyError as error:
        print(error.args[0])
        return 2
    config = _experiment_config(args)
    if config is None:
        return 2

    from repro.obs import NULL_TRACER, Tracer, use_tracer, write_chrome_trace

    tracer = Tracer() if args.trace is not None else NULL_TRACER
    print(f"== {experiment.identifier}: {experiment.title} ==")
    print(f"paper claim: {experiment.paper_claim}")
    with use_tracer(tracer):
        result = experiment.runner(config)
    print(f"result ({type(result).__name__}):")
    for line in _describe(result):
        print(line)
    if args.trace is not None:
        with open(args.trace, "w", encoding="utf-8") as stream:
            events = write_chrome_trace(tracer, stream)
        print(f"trace: {events} event(s) -> {args.trace}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Run one experiment under a tracer and export the recorded spans."""
    try:
        experiment = get_experiment(args.experiment)
    except KeyError as error:
        print(error.args[0])
        return 2
    config = _experiment_config(args)
    if config is None:
        return 2

    from repro.obs import (
        Tracer,
        drift_report,
        render_drift,
        render_summary,
        summarize,
        use_tracer,
        write_chrome_trace,
        write_jsonl,
    )

    tracer = Tracer()
    print(f"== {experiment.identifier}: {experiment.title} (traced) ==")
    with use_tracer(tracer):
        experiment.runner(config)

    out = args.out
    if args.format == "chrome":
        out = out or "trace.json"
        with open(out, "w", encoding="utf-8") as stream:
            events = write_chrome_trace(tracer, stream)
        print(f"trace: {events} event(s) -> {out}")
    elif args.format == "jsonl":
        out = out or "trace.jsonl"
        with open(out, "w", encoding="utf-8") as stream:
            lines = write_jsonl(tracer, stream)
        print(f"trace: {lines} line(s) -> {out}")
    else:
        rendered = "\n\n".join(
            (
                render_summary(summarize(tracer)),
                render_drift(drift_report(tracer)),
            )
        )
        if out is None:
            print(rendered)
        else:
            with open(out, "w", encoding="utf-8") as stream:
                stream.write(rendered + "\n")
            print(f"summary -> {out}")
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    if args.qubits < 1:
        print("--qubits must be >= 1")
        return 2
    if args.repeats < 1:
        print("--repeats must be >= 1")
        return 2
    try:
        model = get_cost_model(
            args.backend,
            args.qubits,
            cache_path=args.cache,
            refresh=args.refresh,
            repeats=args.repeats,
        )
    except ValueError as error:
        print(str(error))
        return 2
    print(f"== cost model: backend={model.backend} qubits={model.num_qubits} ==")
    rows = [
        ("gate_ns", model.gate_ns, "one 1q/2q kernel call, single state"),
        ("copy_ns", model.copy_ns, "one statevector copy (the reuse price)"),
        ("batch_overhead_ns", model.batch_overhead_ns,
         "fixed cost per batched kernel call"),
        ("batch_row_ns", model.batch_row_ns,
         "incremental cost per batch row"),
        ("sample_ns", model.sample_ns, "one leaf outcome draw"),
    ]
    width = max(len(name) for name, _, _ in rows)
    for name, value, note in rows:
        print(f"{name.ljust(width)}  {value:14,.1f}  {note}")
    print(f"{'copy_cost_in_gates'.ljust(width)}  "
          f"{model.copy_cost_in_gates:14.4f}  measured copies-per-gate ratio")
    if args.cache is not None:
        print(f"cached to {args.cache}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the simulation service: TCP listener or the replay benchmark."""
    if args.workers < 1:
        print("--workers must be >= 1")
        return 2
    if args.replay:
        if args.requests < 1:
            print("--requests must be >= 1")
            return 2
        import json as json_module

        from repro.serve import SimulationServer, run_replay

        with SimulationServer(workers=args.workers) as server:
            report = run_replay(
                server,
                num_requests=args.requests,
                num_qubits=args.qubits,
                shots=args.shots,
                noise=args.noise,
            )
        print(f"== serve replay: {report.num_requests} request(s), "
              f"{args.qubits} qubits, {args.shots} shots ==")
        rows = [
            ("cold pass", f"{report.cold_seconds:.3f} s",
             f"{report.cold_rps:8.1f} req/s"),
            ("warm pass", f"{report.warm_seconds:.3f} s",
             f"{report.warm_rps:8.1f} req/s"),
        ]
        for name, seconds, rps in rows:
            print(f"  {name}: {seconds}  {rps}")
        print(f"  speedup: {report.speedup:.2f}x  "
              f"warm hits: {report.warm_hits}/{report.num_requests}")
        print(f"  p50: {report.p50_ms:.3g} ms  p99: {report.p99_ms:.3g} ms")
        verdict = "identical" if report.identical else "DIVERGED"
        print(f"  cold vs warm counts: {verdict}")
        for mismatch in report.mismatches:
            print(f"    {mismatch}")
        for name, value in sorted(report.cache_counters.items()):
            print(f"  {name}: {value:g}")
        if args.json is not None:
            with open(args.json, "w", encoding="utf-8") as stream:
                json_module.dump(report.to_json(), stream, indent=2)
                stream.write("\n")
            print(f"report -> {args.json}")
        return 0 if report.identical else 1

    import asyncio

    from repro.serve import SimulationServer, serve_forever

    server = SimulationServer(workers=args.workers)
    try:
        asyncio.run(serve_forever(server, host=args.host, port=args.port))
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        server.close()
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Run the CLI; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "calibrate":
        return _cmd_calibrate(args)
    if args.command == "lint":
        from repro.lint.cli import run_lint_cli

        return run_lint_cli(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "serve":
        return _cmd_serve(args)
    return _cmd_run(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
