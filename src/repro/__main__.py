"""Command-line entry point: ``python -m repro``.

Two subcommands drive :mod:`repro.experiments.registry`:

* ``python -m repro list`` — every reproducible paper artefact with its
  claim.
* ``python -m repro run <experiment> [--workers N] [--max-depth D] ...`` —
  run one artefact with a scaled configuration and print a compact summary
  of the result object.  ``--workers`` feeds the multiprocess dispatch legs
  of the experiments that measure real parallel execution (fig8 / fig13);
  ``--max-depth`` lets their shard planner split tree layers below the
  first when the first-layer arity would starve the pool.
"""

from __future__ import annotations

import argparse
import dataclasses
from typing import Any, Sequence

from repro.experiments.common import DEFAULT_CONFIG
from repro.experiments.registry import EXPERIMENTS, get_experiment

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce TQSim paper artefacts (figures and tables).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list the available experiments")

    run = commands.add_parser("run", help="run one experiment by id")
    run.add_argument("experiment", help="experiment id, e.g. fig11 or table2")
    run.add_argument("--shots", type=int, default=None,
                     help="outcomes per simulation (default: scaled-down harness value)")
    run.add_argument("--max-qubits", type=int, default=None,
                     help="skip benchmarks wider than this")
    run.add_argument("--seed", type=int, default=None, help="base RNG seed")
    run.add_argument("--backend", default=None,
                     help="execution backend name (see repro.backends)")
    run.add_argument("--workers", type=int, default=None,
                     help="worker processes for the measured dispatch legs")
    run.add_argument("--max-depth", type=int, default=None,
                     help="tree layers the shard planner may split "
                          "(1 = first layer only; deeper feeds more workers "
                          "than the first-layer arity at the cost of prefix "
                          "replays)")
    return parser


def _describe(value: Any, indent: str = "  ") -> list[str]:
    """Flatten a result object into short human-readable lines.

    Experiment results are plain dataclasses mixing scalars with large
    row lists; scalars are printed verbatim and containers are summarised
    by length so the output stays one screen tall.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        lines = []
        for field in dataclasses.fields(value):
            item = getattr(value, field.name)
            if dataclasses.is_dataclass(item) and not isinstance(item, type):
                lines.append(f"{indent}{field.name}:")
                lines.extend(_describe(item, indent + "  "))
            elif isinstance(item, (list, tuple)):
                lines.append(f"{indent}{field.name}: {len(item)} item(s)")
            elif isinstance(item, dict):
                keys = ", ".join(str(key) for key in list(item)[:6])
                suffix = ", ..." if len(item) > 6 else ""
                lines.append(
                    f"{indent}{field.name}: {len(item)} entry(ies) [{keys}{suffix}]"
                )
            elif isinstance(item, float):
                lines.append(f"{indent}{field.name}: {item:.6g}")
            else:
                lines.append(f"{indent}{field.name}: {item}")
        return lines
    return [f"{indent}{value}"]


def _cmd_list() -> int:
    width = max(len(identifier) for identifier in EXPERIMENTS)
    for identifier in sorted(EXPERIMENTS):
        experiment = EXPERIMENTS[identifier]
        print(f"{identifier.ljust(width)}  {experiment.title}")
        print(f"{' ' * width}  {experiment.paper_claim}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        experiment = get_experiment(args.experiment)
    except KeyError as error:
        print(error.args[0])
        return 2
    overrides: dict[str, Any] = {}
    if args.shots is not None:
        overrides["shots"] = args.shots
    if args.max_qubits is not None:
        overrides["max_qubits"] = args.max_qubits
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.backend is not None:
        overrides["backend"] = args.backend
    extra = dict(DEFAULT_CONFIG.extra)
    if args.workers is not None:
        if args.workers < 1:
            print("--workers must be >= 1")
            return 2
        extra["workers"] = args.workers
    if args.max_depth is not None:
        if args.max_depth < 1:
            print("--max-depth must be >= 1")
            return 2
        extra["max_depth"] = args.max_depth
    if extra != DEFAULT_CONFIG.extra:
        overrides["extra"] = extra
    config = DEFAULT_CONFIG.scaled(**overrides)

    print(f"== {experiment.identifier}: {experiment.title} ==")
    print(f"paper claim: {experiment.paper_claim}")
    result = experiment.runner(config)
    print(f"result ({type(result).__name__}):")
    for line in _describe(result):
        print(line)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Run the CLI; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    return _cmd_run(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
