"""Quickstart: simulate a noisy circuit with and without computation reuse.

Run with ``python examples/quickstart.py``.  The script builds a small QFT
benchmark circuit, attaches the paper's Sycamore-derived depolarizing noise
model, runs the baseline per-shot Monte-Carlo simulator and the TQSim reuse
engine, and compares their output distributions and costs.
"""

from __future__ import annotations

from repro.circuits.library import qft_circuit
from repro.core import BaselineNoisySimulator, DynamicCircuitPartitioner, TQSimEngine
from repro.metrics import normalized_fidelity
from repro.noise import depolarizing_noise_model
from repro.statevector import StatevectorSimulator


def main() -> None:
    shots = 500
    copy_cost = 10.0

    circuit = qft_circuit(8)
    noise_model = depolarizing_noise_model()
    print(f"circuit: {circuit!r}")
    print(f"noise model: {noise_model!r}\n")

    # Reference: the ideal (noise-free) output distribution.
    ideal = StatevectorSimulator(seed=0).probabilities(circuit)

    # 1. Baseline: one full trajectory per shot.
    baseline = BaselineNoisySimulator(noise_model, seed=1).run(circuit, shots)
    print("baseline:")
    print(f"  gate applications : {baseline.cost.gate_applications}")
    print(f"  wall time         : {baseline.cost.wall_time_seconds:.2f} s")

    # 2. TQSim: partition the circuit with DCP and reuse intermediate states.
    partitioner = DynamicCircuitPartitioner(copy_cost_in_gates=copy_cost,
                                            margin_of_error=0.15,
                                            min_first_layer_shots=64)
    engine = TQSimEngine(noise_model, seed=2, copy_cost_in_gates=copy_cost)
    tqsim = engine.run(circuit, shots, partitioner=partitioner)
    print("tqsim:")
    print(f"  simulation tree   : {tqsim.metadata['tree']}")
    print(f"  gate applications : {tqsim.cost.gate_applications}")
    print(f"  state copies      : {tqsim.cost.state_copies}")
    print(f"  wall time         : {tqsim.cost.wall_time_seconds:.2f} s")

    # 3. Compare.
    print("\ncomparison:")
    print(f"  computation speedup : "
          f"{tqsim.speedup_over(baseline, copy_cost):.2f}x")
    print(f"  wall-clock speedup  : "
          f"{tqsim.speedup_over(baseline, use_wall_time=True):.2f}x")
    nf_baseline = normalized_fidelity(ideal, baseline.probabilities())
    nf_tqsim = normalized_fidelity(ideal, tqsim.probabilities())
    print(f"  normalized fidelity : baseline {nf_baseline:.3f}, "
          f"tqsim {nf_tqsim:.3f} (difference {abs(nf_baseline - nf_tqsim):.3f})")


if __name__ == "__main__":
    main()
