"""Explore how DCP plans a simulation tree (Sections 3.2 and 3.6).

Run with ``python examples/partition_planning.py``.  No simulation is
executed; the script only builds partition plans, which makes it a fast way
to see how circuit length, shot count, error rates and the state-copy cost
shape the tree and the achievable (analytic) speedup.
"""

from __future__ import annotations

from repro.circuits.library import bv_circuit, qft_circuit, qv_circuit
from repro.core import DynamicCircuitPartitioner
from repro.analysis import speedup_breakdown
from repro.noise import depolarizing_noise_model


def describe_plan(circuit, shots: int, copy_cost: float) -> None:
    noise = depolarizing_noise_model()
    partitioner = DynamicCircuitPartitioner(copy_cost_in_gates=copy_cost)
    plan = partitioner.plan(circuit, shots, noise)
    breakdown = speedup_breakdown(plan, copy_cost, baseline_shots=shots)
    print(f"\n{circuit.name}: {circuit.num_qubits} qubits, "
          f"{circuit.num_gates} gates, {shots} shots, copy cost {copy_cost:g}")
    print(f"  tree                 : {plan.tree}")
    print(f"  subcircuit lengths   : {plan.subcircuit_lengths}")
    print(f"  first-layer shots A0 : {plan.tree.arities[0]}")
    print(f"  baseline work        : {breakdown.baseline_gate_applications:,} gates")
    print(f"  TQSim work           : "
          f"{breakdown.tqsim_total_gate_equivalents:,.0f} gate-equivalents")
    print(f"  analytic speedup     : {breakdown.speedup:.2f}x "
          f"(computation reduction {breakdown.computation_reduction:.0%})")


def main() -> None:
    shots = 32_000  # the paper's shot count; planning is cheap at any scale
    describe_plan(qft_circuit(14), shots, copy_cost=30.0)   # paper's worked example
    describe_plan(qv_circuit(12, seed=1), shots, copy_cost=30.0)
    describe_plan(bv_circuit(16), shots, copy_cost=45.0)    # short, wide worst case
    describe_plan(qft_circuit(14), shots, copy_cost=5.0)    # cheap copies (HBM2 GPU)


if __name__ == "__main__":
    main()
