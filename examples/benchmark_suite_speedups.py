"""Reproduce a scaled-down Figure 11: TQSim speedups across the benchmark suite.

Run with ``python examples/benchmark_suite_speedups.py [max_qubits] [shots]``.
For every circuit of the paper's 48-circuit suite within the width budget the
script runs the baseline and TQSim, then prints speedups and fidelity
differences per circuit and per benchmark class.
"""

from __future__ import annotations

import sys

from repro.experiments.common import ExperimentConfig
from repro.experiments import fig11_speedups


def main(max_qubits: int = 9, shots: int = 256) -> None:
    config = ExperimentConfig(shots=shots, max_qubits=max_qubits, seed=7,
                              copy_cost_in_gates=10.0)
    print(f"running the suite sweep with max_qubits={max_qubits}, shots={shots} ...")
    result = fig11_speedups.run(config)

    print(f"\n{'circuit':<14}{'qubits':>7}{'gates':>7}{'tree':>16}"
          f"{'speedup':>9}{'nf diff':>9}")
    for row in result.table():
        print(f"{row['name']:<14}{row['qubits']:>7}{row['gates']:>7}"
              f"{row['tree']:>16}{row['cost_speedup']:>9.2f}"
              f"{row['fidelity_difference']:>9.3f}")

    print("\nper-class average speedups (paper values in parentheses):")
    for cls, speedup in sorted(result.class_speedups.items()):
        paper = fig11_speedups.PAPER_CLASS_SPEEDUPS[cls]
        print(f"  {cls:<6} {speedup:5.2f}x   (paper {paper:.2f}x)")
    print(f"\noverall average: {result.average_speedup:.2f}x "
          f"(paper {fig11_speedups.PAPER_AVERAGE_SPEEDUP}x at 32 000 shots)")
    print(f"max fidelity difference: {result.max_fidelity_difference:.3f} "
          f"(paper {fig11_speedups.PAPER_MAX_FIDELITY_DIFFERENCE})")


if __name__ == "__main__":
    arguments = [int(value) for value in sys.argv[1:3]]
    main(*arguments)
