"""Reproduce a scaled-down Figure 16: accuracy under different noise models.

Run with ``python examples/noise_model_sensitivity.py``.  A QPE circuit is
simulated under each of the paper's nine noise-model combinations (DC, DCR,
TR, TRR, AD, ADR, PD, PDR, ALL) with both the baseline simulator and TQSim;
the normalized fidelity of each is printed, showing that the reuse engine
tracks the baseline under every channel type, not just the depolarizing model
its partition was derived from.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentConfig
from repro.experiments import fig16_noise_models


def main() -> None:
    config = ExperimentConfig(shots=384, max_qubits=8, seed=9,
                              copy_cost_in_gates=10.0)
    print(f"simulating QPE_{min(config.max_qubits, 9)} under nine noise models "
          f"({config.shots} shots each) ...\n")
    result = fig16_noise_models.run(config)

    print(f"{'model':<6}{'baseline NF':>14}{'tqsim NF':>12}{'difference':>12}")
    for row in result.rows:
        print(f"{row.code:<6}{row.baseline_normalized_fidelity:>14.3f}"
              f"{row.tqsim_normalized_fidelity:>12.3f}{row.difference:>12.3f}")
    print(f"\nworst-case baseline-vs-TQSim difference: {result.max_difference:.3f}")
    print("(the paper reports matching fidelities under all nine models; at the")
    print(" reduced shot count the difference is dominated by sampling noise)")


if __name__ == "__main__":
    main()
