"""Reproduce a scaled-down Figure 18: noisy QAOA cost landscapes.

Run with ``python examples/qaoa_landscape_study.py``.  The script sweeps the
(gamma, beta) plane of a depth-1 QAOA Max-Cut circuit for a random graph and
a star graph, once with the baseline simulator and once with TQSim, then
reports the landscape agreement (MSE) and the computation speedup — the
variational-workload use case that motivates the paper.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.library import random_maxcut_graph, star_graph
from repro.noise import depolarizing_noise_model
from repro.vqa import best_cut_brute_force, compare_landscapes, qaoa_cost_landscape


def main() -> None:
    noise_model = depolarizing_noise_model()
    gammas = np.linspace(-np.pi, np.pi, 5)
    betas = np.linspace(-np.pi, np.pi, 5)
    graphs = [
        ("random_8", random_maxcut_graph(8, seed=11)),
        ("star_8", star_graph(8)),
    ]

    for name, graph in graphs:
        print(f"\n=== {name}: {graph.number_of_nodes()} nodes, "
              f"{graph.number_of_edges()} edges, "
              f"optimal cut {best_cut_brute_force(graph)} ===")
        kwargs = dict(noise_model=noise_model, gammas=gammas, betas=betas,
                      shots=96, seed=3, graph_name=name)
        baseline = qaoa_cost_landscape(graph, simulator="baseline", **kwargs)
        tqsim = qaoa_cost_landscape(graph, simulator="tqsim", **kwargs)
        summary = compare_landscapes(baseline, tqsim)
        print(f"grid points         : {baseline.grid_points}")
        print(f"baseline wall time  : {baseline.wall_time_seconds:.1f} s")
        print(f"tqsim wall time     : {tqsim.wall_time_seconds:.1f} s")
        print(f"computation speedup : {summary['cost_speedup']:.2f}x")
        print(f"landscape MSE       : {summary['mse']:.4f}")
        best_point = np.unravel_index(np.argmax(tqsim.costs), tqsim.costs.shape)
        print(f"best (gamma, beta)  : ({gammas[best_point[0]]:.2f}, "
              f"{betas[best_point[1]]:.2f}) with expected cut "
              f"{tqsim.costs[best_point]:.2f}")


if __name__ == "__main__":
    main()
